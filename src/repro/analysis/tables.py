"""Experiment tables: one generator per experiment of DESIGN.md / EXPERIMENTS.md.

Every generator returns a :class:`ExperimentTable` — a named, self-describing
table with column headers and rows — so that the benchmark harness, the CLI
and EXPERIMENTS.md all print exactly the same numbers.  The experiment
identifiers (E1, E2, ...) match the per-experiment index in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import bounds
from ..core.certificates import CertificateKind, certify_line_strategy
from ..core.lemmas import critical_mu, delta, verify_lemma4, verify_lemma5
from ..core.problem import line_problem, ray_problem
from ..faults.byzantine import improvement_table
from ..related.contract import (
    geometric_contract_schedule,
    optimal_acceleration_ratio,
    search_ratio_from_acceleration,
)
from ..related.fractional import fractional_strategy, measure_fractional_ratio
from ..related.hybrid import (
    geometric_hybrid_schedule,
    hybrid_optimal_ratio,
    measure_hybrid_ratio,
)
from ..related.orc import geometric_orc_strategy, measure_orc_ratio
from ..simulation.competitive import evaluate_strategy
from ..strategies.geometric import RoundRobinGeometricStrategy, ZigzagGeometricLineStrategy
from ..strategies.naive import ReplicationStrategy, TrivialStraightStrategy
from ..strategies.optimal import optimal_strategy
from ..strategies.single_robot import DoublingLineStrategy, SingleRobotRayStrategy
from .sweep import interesting_grid, sweep_optimal_strategies

__all__ = [
    "ExperimentTable",
    "e1_theorem1_line",
    "e2_trivial_regimes",
    "e3_byzantine_bounds",
    "e4_theorem6_rays",
    "e5_parallel_rays",
    "e6_orc_covering",
    "e7_fractional",
    "e8_lemmas",
    "e9_classics",
    "e10_alpha_ablation",
    "e11_connections",
    "e12_randomized_and_average_case",
    "all_experiments",
]


@dataclass
class ExperimentTable:
    """A named table of experiment results.

    Attributes
    ----------
    experiment_id:
        Identifier matching DESIGN.md (e.g. ``"E1"``).
    title:
        Human-readable description of what the table reproduces.
    headers:
        Column names.
    rows:
        Table rows; each row has one entry per header (numbers or strings).
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def column(self, name: str) -> List[object]:
        """All values of one column, by header name."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]


def _fmt(value: object) -> object:
    if isinstance(value, float):
        if math.isinf(value):
            return float("inf")
        return round(value, 6)
    return value


# ----------------------------------------------------------------------
# E1: Theorem 1 — A(k, f) on the line
# ----------------------------------------------------------------------
def e1_theorem1_line(horizon: float = 1e4, max_faulty: int = 3) -> ExperimentTable:
    """Theorem 1: the tight line bound versus the measured optimal strategy.

    One row per ``(k, f)`` in the interesting regime ``f < k < 2 (f + 1)``:
    the paper's closed form, the measured supremum of the geometric
    strategy, and the relative gap (expected to be small and non-negative).
    """
    table = ExperimentTable(
        experiment_id="E1",
        title="Theorem 1: A(k, f) on the line — closed form vs measured strategy",
        headers=["k", "f", "rho", "A(k,f) paper", "measured", "relative gap"],
    )
    for f in range(1, max_faulty + 1):
        for k in range(f + 1, 2 * (f + 1)):
            problem = line_problem(k, f)
            strategy = RoundRobinGeometricStrategy(problem)
            measured = evaluate_strategy(strategy, horizon).ratio
            paper = bounds.crash_line_ratio(k, f)
            gap = (paper - measured) / paper
            table.rows.append(
                [k, f, _fmt(problem.rho), _fmt(paper), _fmt(measured), _fmt(gap)]
            )
    return table


# ----------------------------------------------------------------------
# E2: trivial regimes
# ----------------------------------------------------------------------
def e2_trivial_regimes(horizon: float = 1e3) -> ExperimentTable:
    """Boundary regimes: ratio 1 when ``k >= m (f+1)``; impossibility when ``k == f``."""
    table = ExperimentTable(
        experiment_id="E2",
        title="Trivial and impossible regimes around Theorem 1 / Theorem 6",
        headers=["m", "k", "f", "regime", "paper ratio", "measured"],
    )
    trivial_cases = [(2, 2, 0), (2, 4, 1), (3, 3, 0), (3, 6, 1), (4, 8, 1)]
    for m, k, f in trivial_cases:
        problem = ray_problem(m, k, f)
        strategy = TrivialStraightStrategy(problem)
        measured = evaluate_strategy(strategy, horizon).ratio
        table.rows.append(
            [m, k, f, problem.regime.value, 1.0, _fmt(measured)]
        )
    impossible_cases = [(2, 1, 1), (3, 2, 2)]
    for m, k, f in impossible_cases:
        problem = ray_problem(m, k, f)
        table.rows.append(
            [m, k, f, problem.regime.value, float("inf"), float("inf")]
        )
    return table


# ----------------------------------------------------------------------
# E3: Byzantine transfer
# ----------------------------------------------------------------------
def e3_byzantine_bounds() -> ExperimentTable:
    """Byzantine lower bounds implied by Theorem 1, versus the prior art."""
    table = ExperimentTable(
        experiment_id="E3",
        title="Byzantine lower bounds from the crash transfer (B(k,f) >= A(k,f))",
        headers=["k", "f", "new lower bound", "previous bound", "improvement"],
    )
    for row in improvement_table():
        table.rows.append(
            [
                row.k,
                row.f,
                _fmt(row.new_bound),
                _fmt(row.previous_bound) if row.previous_bound is not None else "-",
                _fmt(row.improvement) if row.improvement is not None else "-",
            ]
        )
    return table


# ----------------------------------------------------------------------
# E4: Theorem 6 — A(m, k, f) on m rays
# ----------------------------------------------------------------------
def e4_theorem6_rays(
    horizon: float = 1e4,
    max_rays: int = 4,
    max_robots: int = 6,
    max_faulty: int = 2,
) -> ExperimentTable:
    """Theorem 6: the m-ray bound versus the measured optimal strategy."""
    table = ExperimentTable(
        experiment_id="E4",
        title="Theorem 6: A(m, k, f) on m rays — closed form vs measured strategy",
        headers=["m", "k", "f", "A(m,k,f) paper", "measured", "relative gap"],
    )
    for row in sweep_optimal_strategies(
        interesting_grid(max_rays, max_robots, max_faulty), horizon=horizon
    ):
        table.rows.append(
            [
                row.num_rays,
                row.num_robots,
                row.num_faulty,
                _fmt(row.theoretical),
                _fmt(row.measured),
                _fmt(row.relative_gap),
            ]
        )
    return table


# ----------------------------------------------------------------------
# E5: f = 0 — parallel search on m rays (the old open question)
# ----------------------------------------------------------------------
def e5_parallel_rays(horizon: float = 1e4, max_rays: int = 6) -> ExperimentTable:
    """Fault-free parallel ray search: Theorem 6 at ``f = 0`` for ``k < m``."""
    from ..strategies.cyclic import CyclicStrategy

    table = ExperimentTable(
        experiment_id="E5",
        title="Parallel m-ray search (f = 0): optimal time ratio, cyclic vs geometric",
        headers=["m", "k", "A(m,k,0) paper", "cyclic measured", "round-robin measured"],
    )
    for m in range(2, max_rays + 1):
        for k in range(1, m):
            paper = bounds.crash_ray_ratio(m, k, 0)
            problem = ray_problem(m, k, 0)
            cyclic = CyclicStrategy(problem)
            cyclic_measured = evaluate_strategy(cyclic, horizon).ratio
            geometric = RoundRobinGeometricStrategy(problem)
            geometric_measured = evaluate_strategy(geometric, horizon).ratio
            table.rows.append(
                [m, k, _fmt(paper), _fmt(cyclic_measured), _fmt(geometric_measured)]
            )
    return table


# ----------------------------------------------------------------------
# E6: ORC covering bound (Eq. 10)
# ----------------------------------------------------------------------
def e6_orc_covering(horizon: float = 1e4, pairs: Optional[Sequence[Tuple[int, int]]] = None) -> ExperimentTable:
    """Eq. 10: C(k, q) versus the measured geometric ORC covering strategy."""
    table = ExperimentTable(
        experiment_id="E6",
        title="ORC q-fold covering: C(k, q) closed form vs measured geometric schedule",
        headers=["k", "q", "C(k,q) paper", "measured", "relative gap"],
    )
    if pairs is None:
        pairs = [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (3, 5), (3, 6), (4, 6)]
    for k, q in pairs:
        paper = bounds.orc_covering_ratio(k, q)
        strategy = geometric_orc_strategy(k, q, horizon)
        measured = measure_orc_ratio(strategy, hi=horizon)
        gap = (paper - measured) / paper
        table.rows.append([k, q, _fmt(paper), _fmt(measured), _fmt(gap)])
    return table


# ----------------------------------------------------------------------
# E7: fractional retrieval (Eq. 11)
# ----------------------------------------------------------------------
def e7_fractional(
    horizon: float = 1e4,
    etas: Sequence[float] = (1.5, 2.0, 2.5, 3.0),
    robot_counts: Sequence[int] = (2, 4, 8),
) -> ExperimentTable:
    """Eq. 11: C(eta) versus the rational-approximation construction."""
    table = ExperimentTable(
        experiment_id="E7",
        title="Fractional one-ray retrieval: C(eta) vs rational approximations",
        headers=["eta", "robots", "effective eta", "C(eta) paper", "measured"],
    )
    for eta in etas:
        for num_robots in robot_counts:
            strategy = fractional_strategy(eta, num_robots, horizon)
            measured = measure_fractional_ratio(strategy, hi=horizon)
            paper = bounds.fractional_retrieval_ratio(eta)
            table.rows.append(
                [eta, num_robots, _fmt(strategy.eta), _fmt(paper), _fmt(measured)]
            )
    return table


# ----------------------------------------------------------------------
# E8: Lemmas 4 and 5
# ----------------------------------------------------------------------
def e8_lemmas(
    parameter_pairs: Sequence[Tuple[int, int]] = ((1, 1), (2, 1), (3, 1), (3, 3), (4, 2), (5, 3)),
) -> ExperimentTable:
    """Numeric verification of Lemma 4 and Lemma 5 on a grid of ``(k, s)``."""
    table = ExperimentTable(
        experiment_id="E8",
        title="Lemmas 4 & 5: polynomial maximiser and the growth factor delta",
        headers=[
            "k",
            "s",
            "critical mu",
            "delta at 0.99*mu_c",
            "lemma4 holds",
            "lemma5 holds",
        ],
    )
    for k, s in parameter_pairs:
        mu_c = critical_mu(k, s)
        mu_test = 0.99 * mu_c
        report4 = verify_lemma4(mu_star=mu_test, k=k, s=s)
        report5 = verify_lemma5(mu_value=mu_test, k=k, s=s)
        table.rows.append(
            [
                k,
                s,
                _fmt(mu_c),
                _fmt(delta(mu_test, k, s)),
                report4.holds,
                report5.holds,
            ]
        )
    return table


# ----------------------------------------------------------------------
# E9: classic special cases
# ----------------------------------------------------------------------
def e9_classics(horizon: float = 1e5, max_rays: int = 6) -> ExperimentTable:
    """Cow path (ratio 9) and single-robot m-ray search."""
    table = ExperimentTable(
        experiment_id="E9",
        title="Classic special cases: cow path and single-robot m-ray search",
        headers=["case", "m", "paper ratio", "measured"],
    )
    doubling = DoublingLineStrategy()
    measured = evaluate_strategy(doubling, horizon).ratio
    table.rows.append(["cow path (k=1, f=0)", 2, _fmt(bounds.cow_path_ratio()), _fmt(measured)])
    for m in range(3, max_rays + 1):
        strategy = SingleRobotRayStrategy(num_rays=m)
        measured = evaluate_strategy(strategy, horizon).ratio
        table.rows.append(
            [
                "single robot, m rays",
                m,
                _fmt(bounds.single_robot_ray_ratio(m)),
                _fmt(measured),
            ]
        )
    return table


# ----------------------------------------------------------------------
# E10: ablations
# ----------------------------------------------------------------------
def e10_alpha_ablation(
    m: int = 2,
    k: int = 3,
    f: int = 1,
    horizon: float = 1e4,
    multipliers: Sequence[float] = (0.85, 0.95, 1.0, 1.05, 1.15, 1.3),
) -> ExperimentTable:
    """Sensitivity of the geometric strategy to its base ``alpha``.

    Also includes the replication baseline and (when the claimed ratio dips
    below the bound) a lower-bound certificate demonstrating failure.
    """
    table = ExperimentTable(
        experiment_id="E10",
        title="Ablation: geometric base alpha sweep and the replication baseline",
        headers=["strategy", "alpha / A*", "guarantee", "measured", "optimal A(m,k,f)"],
    )
    problem = ray_problem(m, k, f)
    optimal = bounds.crash_ray_ratio(m, k, f)
    alpha_star = bounds.optimal_geometric_base(m, k, f)
    for multiplier in multipliers:
        alpha = alpha_star * multiplier
        if alpha <= 1.0:
            continue
        strategy = RoundRobinGeometricStrategy(problem, alpha=alpha)
        measured = evaluate_strategy(strategy, horizon).ratio
        table.rows.append(
            [
                f"geometric (alpha = {multiplier:.2f} * alpha*)",
                _fmt(multiplier),
                _fmt(strategy.theoretical_ratio()),
                _fmt(measured),
                _fmt(optimal),
            ]
        )
    replication = ReplicationStrategy(problem)
    measured = evaluate_strategy(replication, horizon).ratio
    table.rows.append(
        [
            "replication baseline",
            "-",
            _fmt(replication.theoretical_ratio()),
            _fmt(measured),
            _fmt(optimal),
        ]
    )
    return table


# ----------------------------------------------------------------------
# E11: connections to contract and hybrid algorithms
# ----------------------------------------------------------------------
def e11_connections(horizon: float = 1e5, cases: Sequence[Tuple[int, int]] = ((2, 1), (3, 1), (3, 2), (4, 2), (5, 3))) -> ExperimentTable:
    """Contract-algorithm and hybrid-algorithm identities from Section 3."""
    table = ExperimentTable(
        experiment_id="E11",
        title="Section 3 connections: contract scheduling and hybrid algorithms",
        headers=[
            "m",
            "k",
            "A(m,k,0)",
            "1 + 2*acc*(m-k,k)",
            "acc measured",
            "H(m,k) formula",
            "H measured",
        ],
    )
    for m, k in cases:
        search = bounds.crash_ray_ratio(m, k, 0)
        via_contract = search_ratio_from_acceleration(m, k)
        schedule = geometric_contract_schedule(m - k, k, horizon)
        acc_measured = schedule.acceleration_ratio()
        hybrid_formula = hybrid_optimal_ratio(m, k)
        hybrid_schedule = geometric_hybrid_schedule(m, k, horizon)
        hybrid_measured = measure_hybrid_ratio(hybrid_schedule, hi=horizon)
        table.rows.append(
            [
                m,
                k,
                _fmt(search),
                _fmt(via_contract),
                _fmt(acc_measured),
                _fmt(hybrid_formula),
                _fmt(hybrid_measured),
            ]
        )
    return table


# ----------------------------------------------------------------------
# E12: extensions — randomized search and average-case fault injection
# ----------------------------------------------------------------------
def e12_randomized_and_average_case(
    horizon: float = 500.0,
    max_rays: int = 5,
    num_trials: int = 150,
) -> ExperimentTable:
    """Extensions beyond the paper's worst-case deterministic setting.

    Two rows per configuration: (a) the randomized single-robot ray-search
    ratio (Kao-Reif-Tate / Schuierer related work) versus the deterministic
    optimum, and (b) the average-case detection ratio under uniformly random
    (rather than adversarial) crash faults for the paper's optimal strategy.
    """
    from ..faults.injection import simulate_random_faults
    from ..strategies.randomized import randomized_ray_ratio

    table = ExperimentTable(
        experiment_id="E12",
        title="Extensions: randomized search and random (non-adversarial) faults",
        headers=["setting", "parameters", "worst-case / deterministic", "randomized / average"],
    )
    for m in range(2, max_rays + 1):
        table.rows.append(
            [
                "randomized single-robot search",
                f"m={m}",
                _fmt(bounds.single_robot_ray_ratio(m)),
                _fmt(randomized_ray_ratio(m)),
            ]
        )
    for m, k, f in [(2, 3, 1), (2, 5, 2), (3, 4, 1)]:
        problem = ray_problem(m, k, f)
        strategy = RoundRobinGeometricStrategy(problem)
        report = simulate_random_faults(
            strategy, horizon=horizon, num_trials=num_trials, seed=0
        )
        table.rows.append(
            [
                "random crash faults (mean ratio)",
                f"m={m}, k={k}, f={f}",
                _fmt(bounds.crash_ray_ratio(m, k, f)),
                _fmt(report.mean_ratio),
            ]
        )
    return table


def all_experiments(fast: bool = True) -> List[ExperimentTable]:
    """Every experiment table, with smaller horizons when ``fast`` is True."""
    horizon = 1e3 if fast else 1e4
    return [
        e1_theorem1_line(horizon=horizon),
        e2_trivial_regimes(horizon=horizon),
        e3_byzantine_bounds(),
        e4_theorem6_rays(horizon=horizon),
        e5_parallel_rays(horizon=horizon),
        e6_orc_covering(horizon=horizon),
        e7_fractional(horizon=horizon),
        e8_lemmas(),
        e9_classics(horizon=horizon),
        e10_alpha_ablation(horizon=horizon),
        e11_connections(horizon=horizon),
        e12_randomized_and_average_case(),
    ]

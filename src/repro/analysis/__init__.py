"""Analysis helpers: sweeps, convergence studies and experiment tables."""

from .convergence import ConvergencePoint, ConvergenceStudy, horizon_convergence
from .sweep import (
    StochasticSweepRow,
    SweepRow,
    interesting_grid,
    sweep_optimal_strategies,
    sweep_random_faults,
    sweep_strategy_family,
)
from .tables import (
    ExperimentTable,
    all_experiments,
    e1_theorem1_line,
    e2_trivial_regimes,
    e3_byzantine_bounds,
    e4_theorem6_rays,
    e5_parallel_rays,
    e6_orc_covering,
    e7_fractional,
    e8_lemmas,
    e9_classics,
    e10_alpha_ablation,
    e11_connections,
    e12_randomized_and_average_case,
)

__all__ = [
    "ConvergencePoint",
    "ConvergenceStudy",
    "horizon_convergence",
    "StochasticSweepRow",
    "SweepRow",
    "interesting_grid",
    "sweep_optimal_strategies",
    "sweep_random_faults",
    "sweep_strategy_family",
    "ExperimentTable",
    "all_experiments",
    "e1_theorem1_line",
    "e2_trivial_regimes",
    "e3_byzantine_bounds",
    "e4_theorem6_rays",
    "e5_parallel_rays",
    "e6_orc_covering",
    "e7_fractional",
    "e8_lemmas",
    "e9_classics",
    "e10_alpha_ablation",
    "e11_connections",
    "e12_randomized_and_average_case",
]

"""Parameter sweeps: measured versus theoretical ratios over grids of (m, k, f).

The benches and the CLI all boil down to tables of the shape "for these
parameters, the paper predicts X, the simulator measures Y".  This module
produces those rows once, so benches, tests and the CLI share a single
implementation.

Rows are independent of each other, so by default a sweep fans out over a
process pool (one task per ``(m, k, f)`` triple or per strategy) and falls
back to serial evaluation when multiprocessing is unavailable or the
strategies do not pickle.  Pass ``max_workers=1`` to force serial
evaluation — the row order and values are identical either way.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..core.bounds import crash_ray_ratio
from ..core.problem import ray_problem
from ..simulation.competitive import evaluate_strategy
from ..simulation.engine import DEFAULT_ENGINE
from ..simulation.monte_carlo import SeedLike, spawn_seeds
from ..strategies.base import Strategy
from ..strategies.optimal import optimal_strategy

_RowT = TypeVar("_RowT")

__all__ = [
    "SweepRow",
    "StochasticSweepRow",
    "map_rows",
    "make_row_pool",
    "suggest_shard_size",
    "sweep_optimal_strategies",
    "sweep_strategy_family",
    "sweep_random_faults",
    "interesting_grid",
]


@dataclass(frozen=True)
class SweepRow:
    """One row of a measured-versus-theoretical sweep.

    ``relative_gap`` is ``(theoretical - measured) / theoretical`` — positive
    when the finite-horizon measurement has not yet reached the asymptotic
    worst case, which is the expected direction.
    """

    num_rays: int
    num_robots: int
    num_faulty: int
    strategy_name: str
    theoretical: float
    measured: float
    horizon: float

    @property
    def relative_gap(self) -> float:
        """Relative difference between the theoretical and measured ratios."""
        if not math.isfinite(self.theoretical) or self.theoretical == 0:
            return math.nan
        return (self.theoretical - self.measured) / self.theoretical

    def to_dict(self) -> dict:
        """Plain-dict form of the row (for JSON rendering and the service)."""
        return {
            "num_rays": self.num_rays,
            "num_robots": self.num_robots,
            "num_faulty": self.num_faulty,
            "strategy_name": self.strategy_name,
            "theoretical": self.theoretical,
            "measured": self.measured,
            "horizon": self.horizon,
            "relative_gap": self.relative_gap,
        }


@dataclass(frozen=True)
class StochasticSweepRow:
    """One row of a Monte-Carlo fault-injection sweep.

    ``adversarial`` is the worst-case ratio over the campaign's target pool
    with the adversarial fault assignment; the stochastic columns summarise
    the same strategy under uniformly random fault sets.  ``seed`` is the
    per-row child seed (derived deterministically from the sweep seed), so
    any row can be reproduced in isolation.
    """

    num_rays: int
    num_robots: int
    num_faulty: int
    strategy_name: str
    adversarial: float
    mean_ratio: float
    std_error: float
    quantile_95: float
    max_ratio: float
    num_trials: int
    horizon: float
    seed: int

    @property
    def slack(self) -> float:
        """Head-room the adversarial bound leaves over the random-fault mean."""
        return self.adversarial - self.mean_ratio

    def to_dict(self) -> dict:
        """Plain-dict form of the row (for JSON rendering and the service)."""
        return {
            "num_rays": self.num_rays,
            "num_robots": self.num_robots,
            "num_faulty": self.num_faulty,
            "strategy_name": self.strategy_name,
            "adversarial": self.adversarial,
            "mean_ratio": self.mean_ratio,
            "std_error": self.std_error,
            "quantile_95": self.quantile_95,
            "max_ratio": self.max_ratio,
            "num_trials": self.num_trials,
            "horizon": self.horizon,
            "seed": self.seed,
            "slack": self.slack,
        }


def interesting_grid(
    max_rays: int = 4, max_robots: int = 6, max_faulty: int = 2
) -> List[Tuple[int, int, int]]:
    """All ``(m, k, f)`` triples in the interesting regime within the given caps."""
    grid: List[Tuple[int, int, int]] = []
    for m in range(2, max_rays + 1):
        for f in range(0, max_faulty + 1):
            for k in range(f + 1, min(max_robots, m * (f + 1) - 1) + 1):
                if f < k < m * (f + 1):
                    grid.append((m, k, f))
    return grid


# ----------------------------------------------------------------------
# Parallel fan-out
# ----------------------------------------------------------------------
def _optimal_row(args: Tuple[int, int, int, float, str]) -> SweepRow:
    m, k, f, horizon, engine = args
    problem = ray_problem(m, k, f)
    strategy = optimal_strategy(problem)
    result = evaluate_strategy(strategy, horizon, engine=engine)
    return SweepRow(
        num_rays=m,
        num_robots=k,
        num_faulty=f,
        strategy_name=strategy.name,
        theoretical=crash_ray_ratio(m, k, f),
        measured=result.ratio,
        horizon=horizon,
    )


def _family_row(args: Tuple[Strategy, float, str]) -> SweepRow:
    strategy, horizon, engine = args
    problem = strategy.problem
    result = evaluate_strategy(strategy, horizon, engine=engine)
    theoretical = strategy.theoretical_ratio()
    return SweepRow(
        num_rays=problem.num_rays,
        num_robots=problem.num_robots,
        num_faulty=problem.num_faulty,
        strategy_name=strategy.name,
        theoretical=theoretical if theoretical is not None else math.nan,
        measured=result.ratio,
        horizon=horizon,
    )


def _stochastic_row(args: Tuple[int, int, int, float, int, int, str]) -> StochasticSweepRow:
    m, k, f, horizon, num_trials, seed, engine = args
    from ..faults.injection import simulate_random_faults

    problem = ray_problem(m, k, f)
    strategy = optimal_strategy(problem)
    report = simulate_random_faults(
        strategy, horizon, num_trials=num_trials, seed=seed, engine=engine
    )
    statistics = report.statistics
    return StochasticSweepRow(
        num_rays=m,
        num_robots=k,
        num_faulty=f,
        strategy_name=strategy.name,
        adversarial=report.adversarial_ratio,
        mean_ratio=statistics.mean,
        std_error=statistics.std_error,
        quantile_95=statistics.quantile(0.95),
        max_ratio=statistics.maximum,
        num_trials=statistics.num_trials,
        horizon=horizon,
        seed=seed,
    )


def _resolve_workers(max_workers: Optional[int], num_tasks: int) -> int:
    if num_tasks <= 1:
        return 1
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    return max(1, min(max_workers, num_tasks))


def _pool_context():
    """The multiprocessing start-method context :func:`map_rows` uses.

    fork is the fastest start method but is unsafe once other threads are
    alive (the HTTP service calls the fan-out from handler threads while
    sibling threads run engine work — forked children would inherit held
    allocator/BLAS locks and can deadlock).  Prefer forkserver in that
    case.
    """
    methods = multiprocessing.get_all_start_methods()
    if threading.active_count() > 1 and "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


def make_row_pool(
    max_workers: Optional[int], num_tasks: int
) -> Optional[ProcessPoolExecutor]:
    """A process pool configured exactly like :func:`map_rows`' internal one.

    For callers that dispatch many *small* work units over time (the
    service's pull-based local slot) and would pay one pool spin-up per
    :func:`map_rows` call otherwise.  Returns ``None`` when parallelism
    would not pay (one worker, one task) or the pool cannot be built —
    callers then run serially, matching :func:`map_rows`' degradation.
    The caller owns the pool and must ``shutdown()`` it.
    """
    workers = _resolve_workers(max_workers, num_tasks)
    if workers <= 1:
        return None
    try:
        return ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context())
    except OSError:
        return None


def map_rows(
    worker: Callable[[tuple], "_RowT"],
    tasks: List[tuple],
    max_workers: Optional[int] = None,
    progress: Optional[Callable[[int], None]] = None,
) -> List["_RowT"]:
    """Map ``worker`` over ``tasks``, in parallel when it pays off.

    This is the single process-pool fan-out shared by every sweep function
    *and* by the service batch scheduler
    (:mod:`repro.service.scheduler`); ``worker`` must be a picklable
    top-level callable.  Row order always matches task order.  Any
    pool-level failure (a worker machine without fork, unpicklable
    strategies, a broken pool) degrades to the serial path rather than
    surfacing an infrastructure error; pass ``max_workers=1`` to force
    serial evaluation.

    ``progress`` is called with the index of each task as it completes
    (completion order, not task order) — the hook the service's async batch
    jobs use for partial progress counts.  It runs on the coordinating
    thread and must not raise.  When the pool breaks mid-run and the map
    degrades to the serial path, an index may be reported twice; treat the
    callback as monotone best-effort, not an exact ledger.
    """
    workers = _resolve_workers(max_workers, len(tasks))
    if workers > 1:
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            ) as pool:
                if progress is None:
                    return list(pool.map(worker, tasks))
                futures = {
                    pool.submit(worker, task): index
                    for index, task in enumerate(tasks)
                }
                results: List[Optional["_RowT"]] = [None] * len(tasks)
                for future in as_completed(futures):
                    index = futures[future]
                    results[index] = future.result()
                    progress(index)
                return results  # type: ignore[return-value]
        except (pickle.PicklingError, AttributeError, TypeError, BrokenProcessPool, OSError):
            pass
    results = []
    for index, task in enumerate(tasks):
        results.append(worker(task))
        if progress is not None:
            progress(index)
    return results


def suggest_shard_size(
    num_tasks: int,
    num_executors: int = 1,
    shards_per_executor: int = 4,
) -> int:
    """Shard size giving every executor a few shards of comparable weight.

    ``num_executors`` counts the independent executors sharing the work —
    local process-pool workers, or (for the distributed scheduler) remote
    workers plus the local pool.  A few shards per executor amortises the
    per-shard overhead (process startup, one HTTP round-trip) while keeping
    all executors busy even when shards are heterogeneous in cost.
    """
    if num_tasks <= 0:
        return 1
    denominator = max(1, num_executors) * max(1, shards_per_executor)
    return max(1, math.ceil(num_tasks / denominator))


def sweep_optimal_strategies(
    parameters: Iterable[Tuple[int, int, int]],
    horizon: float = 1e4,
    engine: str = DEFAULT_ENGINE,
    max_workers: Optional[int] = None,
) -> List[SweepRow]:
    """Measure the optimal strategy for every ``(m, k, f)`` triple.

    The theoretical column is the tight bound ``A(m, k, f)``; the measured
    column is the exact finite-horizon supremum of the optimal strategy's
    ratio, which approaches the bound from below as the horizon grows.
    Triples are evaluated in parallel across processes by default
    (``max_workers=None`` uses one worker per CPU); pass ``max_workers=1``
    for serial evaluation.
    """
    tasks = [(m, k, f, horizon, engine) for m, k, f in parameters]
    return map_rows(_optimal_row, tasks, max_workers)


def sweep_strategy_family(
    strategies: Sequence[Strategy],
    horizon: float = 1e4,
    engine: str = DEFAULT_ENGINE,
    max_workers: Optional[int] = None,
) -> List[SweepRow]:
    """Measure an arbitrary family of strategies (baselines, ablations, ...).

    Parallelised like :func:`sweep_optimal_strategies`; strategies that do
    not pickle are evaluated serially in-process.
    """
    tasks = [(strategy, horizon, engine) for strategy in strategies]
    return map_rows(_family_row, tasks, max_workers)


def sweep_random_faults(
    parameters: Iterable[Tuple[int, int, int]],
    horizon: float = 1e3,
    num_trials: int = 256,
    seed: SeedLike = 0,
    engine: str = DEFAULT_ENGINE,
    max_workers: Optional[int] = None,
) -> List[StochasticSweepRow]:
    """Monte-Carlo fault-injection campaign for every ``(m, k, f)`` triple.

    The stochastic member of the sweep family: each row runs
    :func:`repro.faults.injection.simulate_random_faults` against the
    optimal strategy and summarises the trial statistics next to the
    adversarial reference.  Rows get independent child seeds derived from
    ``seed`` via :func:`repro.simulation.monte_carlo.spawn_seeds`, so the
    sweep is reproducible row-by-row and independent of worker scheduling;
    parallelised like :func:`sweep_optimal_strategies`.
    """
    parameters = list(parameters)
    seeds = spawn_seeds(seed, len(parameters))
    tasks = [
        (m, k, f, horizon, num_trials, row_seed, engine)
        for (m, k, f), row_seed in zip(parameters, seeds)
    ]
    return map_rows(_stochastic_row, tasks, max_workers)

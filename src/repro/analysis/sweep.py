"""Parameter sweeps: measured versus theoretical ratios over grids of (m, k, f).

The benches and EXPERIMENTS.md all boil down to tables of the shape
"for these parameters, the paper predicts X, the simulator measures Y".
This module produces those rows once, so benches, tests and the CLI share a
single implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.bounds import crash_ray_ratio
from ..core.problem import Regime, SearchProblem, ray_problem
from ..simulation.competitive import evaluate_strategy
from ..strategies.base import Strategy
from ..strategies.optimal import optimal_strategy

__all__ = ["SweepRow", "sweep_optimal_strategies", "sweep_strategy_family", "interesting_grid"]


@dataclass(frozen=True)
class SweepRow:
    """One row of a measured-versus-theoretical sweep.

    ``relative_gap`` is ``(theoretical - measured) / theoretical`` — positive
    when the finite-horizon measurement has not yet reached the asymptotic
    worst case, which is the expected direction.
    """

    num_rays: int
    num_robots: int
    num_faulty: int
    strategy_name: str
    theoretical: float
    measured: float
    horizon: float

    @property
    def relative_gap(self) -> float:
        """Relative difference between the theoretical and measured ratios."""
        if not math.isfinite(self.theoretical) or self.theoretical == 0:
            return math.nan
        return (self.theoretical - self.measured) / self.theoretical


def interesting_grid(
    max_rays: int = 4, max_robots: int = 6, max_faulty: int = 2
) -> List[Tuple[int, int, int]]:
    """All ``(m, k, f)`` triples in the interesting regime within the given caps."""
    grid: List[Tuple[int, int, int]] = []
    for m in range(2, max_rays + 1):
        for f in range(0, max_faulty + 1):
            for k in range(f + 1, min(max_robots, m * (f + 1) - 1) + 1):
                if f < k < m * (f + 1):
                    grid.append((m, k, f))
    return grid


def sweep_optimal_strategies(
    parameters: Iterable[Tuple[int, int, int]],
    horizon: float = 1e4,
) -> List[SweepRow]:
    """Measure the optimal strategy for every ``(m, k, f)`` triple.

    The theoretical column is the tight bound ``A(m, k, f)``; the measured
    column is the exact finite-horizon supremum of the optimal strategy's
    ratio, which approaches the bound from below as the horizon grows.
    """
    rows: List[SweepRow] = []
    for m, k, f in parameters:
        problem = ray_problem(m, k, f)
        strategy = optimal_strategy(problem)
        result = evaluate_strategy(strategy, horizon)
        rows.append(
            SweepRow(
                num_rays=m,
                num_robots=k,
                num_faulty=f,
                strategy_name=strategy.name,
                theoretical=crash_ray_ratio(m, k, f),
                measured=result.ratio,
                horizon=horizon,
            )
        )
    return rows


def sweep_strategy_family(
    strategies: Sequence[Strategy],
    horizon: float = 1e4,
) -> List[SweepRow]:
    """Measure an arbitrary family of strategies (baselines, ablations, ...)."""
    rows: List[SweepRow] = []
    for strategy in strategies:
        problem = strategy.problem
        result = evaluate_strategy(strategy, horizon)
        theoretical = strategy.theoretical_ratio()
        rows.append(
            SweepRow(
                num_rays=problem.num_rays,
                num_robots=problem.num_robots,
                num_faulty=problem.num_faulty,
                strategy_name=strategy.name,
                theoretical=theoretical if theoretical is not None else math.nan,
                measured=result.ratio,
                horizon=horizon,
            )
        )
    return rows

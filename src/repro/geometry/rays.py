"""Search domains: the star of ``m`` rays and the real line.

The paper's robots move on a *star*: ``m`` half-lines (rays) glued at a
common origin.  A point is addressed by the pair ``(ray index, distance from
the origin)``.  The real line is the special case ``m = 2``: ray ``0`` is
the positive half-line and ray ``1`` the negative one, and
:class:`LineDomain` offers conversions to and from signed coordinates.

These classes are deliberately lightweight — they validate addressing and
provide distance computations, while trajectories and simulation live in
:mod:`repro.geometry.trajectory` and :mod:`repro.simulation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..exceptions import InvalidProblemError

__all__ = [
    "RayPoint",
    "StarDomain",
    "LineDomain",
    "POSITIVE_RAY",
    "NEGATIVE_RAY",
    "symmetric_pair",
]

#: Ray index used for the positive half-line when the domain is the real line.
POSITIVE_RAY = 0
#: Ray index used for the negative half-line when the domain is the real line.
NEGATIVE_RAY = 1


@dataclass(frozen=True, order=True)
class RayPoint:
    """A point on a star of rays: ``(ray, distance)`` with ``distance >= 0``.

    The origin is represented as distance ``0.0`` on any ray; two origin
    points on different rays compare unequal as dataclasses but are treated
    as the same location by :meth:`StarDomain.travel_distance`.
    """

    ray: int
    distance: float

    def __post_init__(self) -> None:
        if self.ray < 0:
            raise InvalidProblemError(f"ray index must be >= 0, got {self.ray}")
        if self.distance < 0:
            raise InvalidProblemError(
                f"distance must be >= 0, got {self.distance}"
            )

    @property
    def is_origin(self) -> bool:
        """True when the point is the common origin of all rays."""
        return self.distance == 0.0


class StarDomain:
    """A star of ``num_rays`` rays emanating from a single origin.

    The domain knows how to validate ray indices, measure travel distance
    between points (through the origin when the rays differ), and enumerate
    its rays.  It is shared by every strategy and by the simulator.
    """

    def __init__(self, num_rays: int) -> None:
        if not isinstance(num_rays, int) or num_rays < 1:
            raise InvalidProblemError(
                f"a star domain needs at least one ray, got {num_rays!r}"
            )
        self._num_rays = num_rays

    # ------------------------------------------------------------------
    @property
    def num_rays(self) -> int:
        """Number of rays in the star."""
        return self._num_rays

    @property
    def is_line(self) -> bool:
        """True when the star is the real line (exactly two rays)."""
        return self._num_rays == 2

    def rays(self) -> Iterator[int]:
        """Iterate over the valid ray indices ``0 .. num_rays - 1``."""
        return iter(range(self._num_rays))

    # ------------------------------------------------------------------
    def validate_ray(self, ray: int) -> int:
        """Check that ``ray`` is a valid index and return it."""
        if not 0 <= ray < self._num_rays:
            raise InvalidProblemError(
                f"ray index {ray} out of range for a {self._num_rays}-ray star"
            )
        return ray

    def point(self, ray: int, distance: float) -> RayPoint:
        """Build a validated :class:`RayPoint` on this domain."""
        self.validate_ray(ray)
        return RayPoint(ray=ray, distance=float(distance))

    def travel_distance(self, a: RayPoint, b: RayPoint) -> float:
        """Shortest travel distance between two points of the star.

        On the same ray this is ``|a.distance - b.distance|``; on different
        rays the robot must pass through the origin, giving
        ``a.distance + b.distance``.
        """
        self.validate_ray(a.ray)
        self.validate_ray(b.ray)
        if a.ray == b.ray or a.is_origin or b.is_origin:
            if a.is_origin:
                return b.distance
            if b.is_origin:
                return a.distance
            return abs(a.distance - b.distance)
        return a.distance + b.distance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StarDomain(num_rays={self._num_rays})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StarDomain) and other._num_rays == self._num_rays

    def __hash__(self) -> int:
        return hash(("StarDomain", self._num_rays))


class LineDomain(StarDomain):
    """The real line viewed as a two-ray star.

    Adds conversions between signed coordinates and ``(ray, distance)``
    pairs: positive coordinates live on ray :data:`POSITIVE_RAY`, negative
    ones on ray :data:`NEGATIVE_RAY`.
    """

    def __init__(self) -> None:
        super().__init__(num_rays=2)

    @staticmethod
    def from_signed(x: float) -> RayPoint:
        """Convert a signed coordinate into a :class:`RayPoint`."""
        if x >= 0:
            return RayPoint(ray=POSITIVE_RAY, distance=float(x))
        return RayPoint(ray=NEGATIVE_RAY, distance=float(-x))

    @staticmethod
    def to_signed(point: RayPoint) -> float:
        """Convert a :class:`RayPoint` of a two-ray star into a signed coordinate."""
        if point.ray == POSITIVE_RAY:
            return point.distance
        if point.ray == NEGATIVE_RAY:
            return -point.distance
        raise InvalidProblemError(
            f"point on ray {point.ray} does not belong to the line domain"
        )

    @staticmethod
    def mirror(point: RayPoint) -> RayPoint:
        """Return the reflection ``-x`` of a line point ``x``."""
        if point.ray not in (POSITIVE_RAY, NEGATIVE_RAY):
            raise InvalidProblemError(
                f"point on ray {point.ray} does not belong to the line domain"
            )
        other = NEGATIVE_RAY if point.ray == POSITIVE_RAY else POSITIVE_RAY
        return RayPoint(ray=other, distance=point.distance)


def symmetric_pair(distance: float) -> List[RayPoint]:
    """The pair ``(x, -x)`` of line points at a given distance.

    Used by the symmetric line-cover setting of Section 2, where a robot
    covers ``x`` only once it has visited both ``x`` and ``-x``.
    """
    if distance < 0:
        raise InvalidProblemError(f"distance must be >= 0, got {distance}")
    return [
        RayPoint(ray=POSITIVE_RAY, distance=float(distance)),
        RayPoint(ray=NEGATIVE_RAY, distance=float(distance)),
    ]

"""Geometric substrate: ray domains, trajectories and visit analysis."""

from .rays import (
    NEGATIVE_RAY,
    POSITIVE_RAY,
    LineDomain,
    RayPoint,
    StarDomain,
    symmetric_pair,
)
from .trajectory import (
    Excursion,
    Segment,
    Trajectory,
    excursion_trajectory,
    idle_trajectory,
    straight_trajectory,
    zigzag_trajectory,
)
from .visits import (
    Visit,
    covering_robots,
    first_visits,
    nth_distinct_visit_time,
    visit_count_by_time,
)

__all__ = [
    "NEGATIVE_RAY",
    "POSITIVE_RAY",
    "LineDomain",
    "RayPoint",
    "StarDomain",
    "symmetric_pair",
    "Excursion",
    "Segment",
    "Trajectory",
    "excursion_trajectory",
    "idle_trajectory",
    "straight_trajectory",
    "zigzag_trajectory",
    "Visit",
    "covering_robots",
    "first_visits",
    "nth_distinct_visit_time",
    "visit_count_by_time",
]

"""Geometric substrate: ray domains, trajectories and visit analysis."""

from .compiled import CompiledRay, CompiledTrajectory
from .rays import (
    NEGATIVE_RAY,
    POSITIVE_RAY,
    LineDomain,
    RayPoint,
    StarDomain,
    symmetric_pair,
)
from .trajectory import (
    Excursion,
    Segment,
    Trajectory,
    excursion_trajectory,
    idle_trajectory,
    straight_trajectory,
    zigzag_trajectory,
)
from .visits import (
    Visit,
    covering_robots,
    first_arrival_matrix,
    first_visits,
    nth_distinct_visit_time,
    nth_distinct_visit_times,
    order_statistic_times,
    visit_count_by_time,
)

__all__ = [
    "CompiledRay",
    "CompiledTrajectory",
    "NEGATIVE_RAY",
    "POSITIVE_RAY",
    "LineDomain",
    "RayPoint",
    "StarDomain",
    "symmetric_pair",
    "Excursion",
    "Segment",
    "Trajectory",
    "excursion_trajectory",
    "idle_trajectory",
    "straight_trajectory",
    "zigzag_trajectory",
    "Visit",
    "covering_robots",
    "first_arrival_matrix",
    "first_visits",
    "nth_distinct_visit_time",
    "nth_distinct_visit_times",
    "order_statistic_times",
    "visit_count_by_time",
]

"""Robot trajectories on a star of rays.

A trajectory describes the motion of a single unit-speed robot that starts
at the origin at time 0.  Internally every trajectory is compiled into a
sequence of :class:`Segment` objects — maximal stretches of time during
which the robot moves monotonically along a single ray — which makes the
queries the library needs *exact*:

* :meth:`Trajectory.position` — where is the robot at time ``t``?
* :meth:`Trajectory.first_arrival_time` — when does the robot first reach a
  given point?  (``math.inf`` if never.)
* :meth:`Trajectory.arrival_breakpoints` — the distances on a ray at which
  the first-arrival-time function jumps; between consecutive breakpoints it
  has the form ``c + x``, which is what makes the competitive-ratio supremum
  computable exactly (see :mod:`repro.simulation.competitive`).

Two convenient constructors cover the strategies in the paper:

* :func:`excursion_trajectory` — the robot repeatedly leaves the origin,
  walks to a prescribed radius on a prescribed ray and returns.  This is the
  natural motion for the m-ray problem and for the ORC covering setting.
* :func:`zigzag_trajectory` — the robot alternates directions on the real
  line *without* returning to the origin between turns (turning points
  ``t1, -t2, t3, ...``).  This matches the standardised strategies of
  Section 2.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .compiled import CompiledTrajectory

from ..exceptions import InvalidStrategyError
from .rays import NEGATIVE_RAY, POSITIVE_RAY, RayPoint

__all__ = [
    "Segment",
    "Trajectory",
    "Excursion",
    "excursion_trajectory",
    "zigzag_trajectory",
    "straight_trajectory",
    "idle_trajectory",
]

_EPS = 1e-12


@dataclass(frozen=True)
class Segment:
    """A maximal time interval of monotone motion along a single ray.

    Attributes
    ----------
    start_time, end_time:
        The time interval ``[start_time, end_time]`` covered by the segment.
    ray:
        Ray index the robot is on during the segment.
    start_distance, end_distance:
        Distances from the origin at the segment's endpoints.  Motion is at
        unit speed, so ``|end_distance - start_distance| ==
        end_time - start_time`` (up to floating point).
    """

    start_time: float
    end_time: float
    ray: int
    start_distance: float
    end_distance: float

    def __post_init__(self) -> None:
        if self.end_time < self.start_time - _EPS:
            raise InvalidStrategyError(
                f"segment ends before it starts: {self.start_time} > {self.end_time}"
            )
        if self.start_distance < -_EPS or self.end_distance < -_EPS:
            raise InvalidStrategyError("segment distances must be non-negative")
        span = abs(self.end_distance - self.start_distance)
        duration = self.end_time - self.start_time
        if abs(span - duration) > 1e-6 * max(1.0, duration):
            raise InvalidStrategyError(
                "segment violates unit speed: "
                f"covers distance {span} in time {duration}"
            )

    @property
    def duration(self) -> float:
        """Length of the segment's time interval."""
        return self.end_time - self.start_time

    @property
    def max_distance(self) -> float:
        """Largest distance from the origin reached during the segment."""
        return max(self.start_distance, self.end_distance)

    @property
    def min_distance(self) -> float:
        """Smallest distance from the origin reached during the segment."""
        return min(self.start_distance, self.end_distance)

    def covers_distance(self, distance: float) -> bool:
        """True when the robot passes through ``distance`` on this segment."""
        return self.min_distance - _EPS <= distance <= self.max_distance + _EPS

    def arrival_time(self, distance: float) -> float:
        """Time at which the segment's motion reaches ``distance``.

        Only valid when :meth:`covers_distance` holds; motion is monotone
        within a segment so the crossing time is unique.
        """
        if not self.covers_distance(distance):
            raise InvalidStrategyError(
                f"segment does not cover distance {distance}"
            )
        return self.start_time + abs(distance - self.start_distance)

    def position_at(self, t: float) -> float:
        """Distance from the origin at time ``t`` (``t`` inside the segment)."""
        if not (self.start_time - _EPS <= t <= self.end_time + _EPS):
            raise InvalidStrategyError(f"time {t} outside segment")
        direction = 1.0 if self.end_distance >= self.start_distance else -1.0
        return self.start_distance + direction * (t - self.start_time)


class Trajectory:
    """The full motion of one robot, as an ordered sequence of segments.

    The constructor validates temporal continuity (each segment starts when
    the previous one ends) and spatial continuity (ray changes only happen
    at the origin).  A trajectory is immutable once built.
    """

    def __init__(self, segments: Sequence[Segment]) -> None:
        segs = tuple(segments)
        self._validate(segs)
        self._segments = segs
        self._by_ray: dict[int, List[Segment]] = {}
        for seg in segs:
            self._by_ray.setdefault(seg.ray, []).append(seg)
        self._start_times = [seg.start_time for seg in segs]
        self._pieces: dict[int, Tuple[List[float], List[float], List[Segment]]] = {}
        for ray, ray_segs in self._by_ray.items():
            frontiers: List[float] = []  # radius already covered before each piece
            reaches: List[float] = []  # radius covered after the piece (ascending)
            owners: List[Segment] = []  # outward segment realising the piece
            covered = 0.0
            for seg in ray_segs:
                if seg.end_distance > seg.start_distance and seg.end_distance > covered + _EPS:
                    frontiers.append(max(covered, seg.start_distance))
                    reaches.append(seg.end_distance)
                    owners.append(seg)
                    covered = seg.end_distance
            self._pieces[ray] = (frontiers, reaches, owners)
        self._compiled: Optional["CompiledTrajectory"] = None

    @staticmethod
    def _validate(segments: Tuple[Segment, ...]) -> None:
        previous: Optional[Segment] = None
        for seg in segments:
            if previous is None:
                if seg.start_time > _EPS:
                    raise InvalidStrategyError(
                        "trajectory must start at time 0 "
                        f"(first segment starts at {seg.start_time})"
                    )
                if seg.start_distance > _EPS:
                    raise InvalidStrategyError(
                        "trajectory must start at the origin "
                        f"(first segment starts at distance {seg.start_distance})"
                    )
            else:
                if abs(seg.start_time - previous.end_time) > 1e-6 * max(
                    1.0, previous.end_time
                ):
                    raise InvalidStrategyError(
                        "segments must be temporally contiguous: "
                        f"{previous.end_time} vs {seg.start_time}"
                    )
                if seg.ray == previous.ray:
                    if abs(seg.start_distance - previous.end_distance) > 1e-6 * max(
                        1.0, previous.end_distance
                    ):
                        raise InvalidStrategyError(
                            "segments on the same ray must be spatially contiguous"
                        )
                else:
                    if previous.end_distance > 1e-6 or seg.start_distance > 1e-6:
                        raise InvalidStrategyError(
                            "ray changes are only allowed at the origin"
                        )
            previous = seg

    # ------------------------------------------------------------------
    @property
    def segments(self) -> Tuple[Segment, ...]:
        """The underlying segments, in temporal order."""
        return self._segments

    @property
    def total_time(self) -> float:
        """End time of the last segment (0 for an empty trajectory)."""
        if not self._segments:
            return 0.0
        return self._segments[-1].end_time

    def rays_visited(self) -> List[int]:
        """Sorted list of ray indices this trajectory ever moves on."""
        return sorted(self._by_ray)

    def max_distance(self, ray: int) -> float:
        """Farthest distance from the origin ever reached on ``ray``."""
        segs = self._by_ray.get(ray)
        if not segs:
            return 0.0
        return max(seg.max_distance for seg in segs)

    # ------------------------------------------------------------------
    def position(self, t: float) -> RayPoint:
        """Location of the robot at time ``t``.

        Before time 0 and after the trajectory ends the robot is assumed to
        sit still (at the origin, respectively at its final position).
        """
        if t <= 0 or not self._segments:
            first_ray = self._segments[0].ray if self._segments else 0
            return RayPoint(ray=first_ray, distance=0.0)
        if t >= self.total_time:
            last = self._segments[-1]
            return RayPoint(ray=last.ray, distance=max(0.0, last.end_distance))
        # Last segment starting no later than t; step back when the previous
        # segment still covers t so that ties resolve to the earliest segment,
        # exactly as the original linear scan did.
        index = bisect_right(self._start_times, t) - 1
        while index > 0 and t <= self._segments[index - 1].end_time + _EPS:
            index -= 1
        seg = self._segments[index]
        if seg.start_time - _EPS <= t <= seg.end_time + _EPS:
            return RayPoint(ray=seg.ray, distance=max(0.0, seg.position_at(t)))
        # Unreachable given validation, but keep a defensive error.
        raise InvalidStrategyError(f"time {t} not covered by trajectory")

    def first_arrival_time(self, ray: int, distance: float) -> float:
        """First time the robot reaches ``(ray, distance)``.

        Returns ``math.inf`` when the trajectory never visits the point.
        The origin (distance 0) is considered visited at time 0 regardless
        of the ray.
        """
        if distance <= _EPS:
            return 0.0
        pieces = self._pieces.get(ray)
        if pieces is None:
            return math.inf
        _frontiers, reaches, owners = pieces
        index = bisect_left(reaches, distance - _EPS)
        if index == len(reaches):
            return math.inf
        seg = owners[index]
        return seg.start_time + abs(distance - seg.start_distance)

    def arrival_times(self, ray: int, distance: float) -> List[float]:
        """All times at which the robot passes through ``(ray, distance)``."""
        if distance <= _EPS:
            return [0.0]
        times = [
            seg.arrival_time(distance)
            for seg in self._by_ray.get(ray, ())
            if seg.covers_distance(distance)
        ]
        return sorted(times)

    def arrival_breakpoints(self, ray: int, minimum: float = 0.0) -> List[float]:
        """Distances at which the first-arrival-time function jumps on ``ray``.

        Between consecutive breakpoints the first arrival time is of the
        form ``c + x`` (the robot reaches ``x`` on its way out during a
        fixed segment), so the supremum of ``tau(x)/x`` over any interval of
        targets is attained in the right-limit at a breakpoint.  The
        returned list contains every outward segment's *starting* frontier
        (largest distance already covered earlier), restricted to values at
        least ``minimum``, sorted and de-duplicated.
        """
        pieces = self._pieces.get(ray)
        if pieces is None:
            return []
        frontiers, _reaches, _owners = pieces
        return [b for b in frontiers if b >= minimum - _EPS]

    def arrival_pieces(self, ray: int) -> Tuple[List[float], List[float], List[float]]:
        """The pieces of the first-arrival-time function on ``ray``.

        Returns three parallel lists ``(frontiers, reaches, offsets)``: on
        the ``i``-th piece, i.e. for distances in ``(frontiers[i],
        reaches[i]]``, the first arrival time is ``offsets[i] + x``.  All
        three lists are strictly increasing in radius and empty when the
        trajectory never moves on ``ray``.  This is the raw material of
        :class:`~repro.geometry.compiled.CompiledTrajectory`.
        """
        pieces = self._pieces.get(ray)
        if pieces is None:
            return [], [], []
        frontiers, reaches, owners = pieces
        offsets = [seg.start_time - seg.start_distance for seg in owners]
        return list(frontiers), list(reaches), offsets

    def compiled(self) -> "CompiledTrajectory":
        """The NumPy-lowered form of this trajectory, built once and cached.

        The compiled form answers batched first-arrival queries via
        ``np.searchsorted``; see :mod:`repro.geometry.compiled`.
        """
        if self._compiled is None:
            from .compiled import CompiledTrajectory

            self._compiled = CompiledTrajectory(self)
        return self._compiled

    def visits_origin_times(self) -> List[float]:
        """Times at which the robot is at the origin (segment endpoints only)."""
        times = [0.0]
        for seg in self._segments:
            if seg.end_distance <= _EPS:
                times.append(seg.end_time)
        return times

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trajectory(num_segments={len(self._segments)}, "
            f"total_time={self.total_time:.3f})"
        )


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Excursion:
    """One out-and-back trip: leave the origin, reach ``radius`` on ``ray``, return."""

    ray: int
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise InvalidStrategyError(
                f"excursion radius must be positive, got {self.radius}"
            )
        if self.ray < 0:
            raise InvalidStrategyError(f"ray index must be >= 0, got {self.ray}")


def excursion_trajectory(excursions: Iterable[Excursion | Tuple[int, float]]) -> Trajectory:
    """Build a trajectory from a sequence of out-and-back excursions.

    Each entry is either an :class:`Excursion` or a ``(ray, radius)`` pair.
    The robot performs them in order, returning to the origin after each
    one; this is exactly the motion pattern used by the upper-bound strategy
    in the paper's appendix and by the ORC covering setting.
    """
    segments: List[Segment] = []
    t = 0.0
    for item in excursions:
        exc = item if isinstance(item, Excursion) else Excursion(ray=item[0], radius=item[1])
        segments.append(
            Segment(
                start_time=t,
                end_time=t + exc.radius,
                ray=exc.ray,
                start_distance=0.0,
                end_distance=exc.radius,
            )
        )
        segments.append(
            Segment(
                start_time=t + exc.radius,
                end_time=t + 2 * exc.radius,
                ray=exc.ray,
                start_distance=exc.radius,
                end_distance=0.0,
            )
        )
        t += 2 * exc.radius
    return Trajectory(segments)


def zigzag_trajectory(
    turning_points: Sequence[float],
    start_positive: bool = True,
    final_leg: Optional[float] = None,
) -> Trajectory:
    """Build a line trajectory that alternates directions without homing.

    ``turning_points`` is the sequence ``(t1, t2, t3, ...)`` of Section 2:
    the robot walks to ``+t1``, turns, walks to ``-t2``, turns, walks to
    ``+t3`` and so on (signs flipped when ``start_positive`` is False).
    All turning points must be positive; the standardisation argument of
    the paper additionally wants ``t1 <= t3 <= t5 <= ...`` and
    ``t2 <= t4 <= ...`` but that is *not* enforced here — strategy-level
    normalisation lives in :mod:`repro.strategies.validation`.

    ``final_leg`` optionally appends one last outward run to the given
    distance after the final turning point (useful to close out a finite
    horizon).
    """
    points = [float(t) for t in turning_points]
    for t in points:
        if t <= 0:
            raise InvalidStrategyError(
                f"turning points must be positive, got {t}"
            )
    segments: List[Segment] = []
    time = 0.0
    position = 0.0  # signed coordinate
    direction = 1.0 if start_positive else -1.0

    def ray_of(sign: float) -> int:
        return POSITIVE_RAY if sign > 0 else NEGATIVE_RAY

    def add_leg(target_signed: float) -> None:
        nonlocal time, position
        if abs(target_signed - position) <= _EPS:
            return
        # Split the leg at the origin if it crosses it.
        waypoints = [position, target_signed]
        if position * target_signed < -_EPS:
            waypoints = [position, 0.0, target_signed]
        for start, end in zip(waypoints[:-1], waypoints[1:]):
            span = abs(end - start)
            if span <= _EPS:
                continue
            sign = start + end  # whichever endpoint is non-zero determines the ray
            ray = ray_of(sign if abs(sign) > _EPS else direction)
            segments.append(
                Segment(
                    start_time=time,
                    end_time=time + span,
                    ray=ray,
                    start_distance=abs(start),
                    end_distance=abs(end),
                )
            )
            time += span
        position = target_signed

    for turning_point in points:
        add_leg(direction * turning_point)
        direction = -direction
    if final_leg is not None:
        if final_leg <= 0:
            raise InvalidStrategyError(
                f"final_leg must be positive, got {final_leg}"
            )
        add_leg(direction * final_leg)
    return Trajectory(segments)


def straight_trajectory(ray: int, distance: float) -> Trajectory:
    """A robot that walks straight out to ``distance`` on ``ray`` and stops.

    This is the building block of the trivial strategy for ``k >= m(f+1)``:
    send ``f + 1`` robots straight down each ray and the target is confirmed
    at time exactly ``|x|`` (ratio 1).
    """
    if distance <= 0:
        raise InvalidStrategyError(f"distance must be positive, got {distance}")
    return Trajectory(
        [
            Segment(
                start_time=0.0,
                end_time=distance,
                ray=ray,
                start_distance=0.0,
                end_distance=distance,
            )
        ]
    )


def idle_trajectory() -> Trajectory:
    """A robot that never leaves the origin (useful as a degenerate baseline)."""
    return Trajectory([])

"""Multi-robot visit analysis.

The detection rule for crash faults is purely order-statistical: a target at
point ``p`` is confirmed at the time the ``(f + 1)``-th *distinct* robot
first reaches ``p`` (the adversary silences the earliest ``f`` visitors).
This module computes those order statistics exactly from trajectories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..exceptions import InvalidProblemError
from .rays import RayPoint
from .trajectory import Trajectory

__all__ = [
    "Visit",
    "first_visits",
    "nth_distinct_visit_time",
    "visit_count_by_time",
    "covering_robots",
    "first_arrival_matrix",
    "order_statistic_times",
    "nth_distinct_visit_times",
]


@dataclass(frozen=True, order=True)
class Visit:
    """A single robot's first arrival at a point: ``(time, robot index)``.

    Ordering is by time first (then robot index), so a sorted list of visits
    is the arrival order the adversary reasons about.
    """

    time: float
    robot: int


def first_visits(trajectories: Sequence[Trajectory], point: RayPoint) -> List[Visit]:
    """First arrival of every robot at ``point``, sorted by time.

    Robots that never reach the point are omitted (their arrival time is
    infinite).
    """
    visits = []
    for index, trajectory in enumerate(trajectories):
        time = trajectory.first_arrival_time(point.ray, point.distance)
        if math.isfinite(time):
            visits.append(Visit(time=time, robot=index))
    return sorted(visits)


def nth_distinct_visit_time(
    trajectories: Sequence[Trajectory], point: RayPoint, n: int
) -> float:
    """Time at which the ``n``-th distinct robot first reaches ``point``.

    Returns ``math.inf`` when fewer than ``n`` robots ever visit the point.
    With ``n = f + 1`` this is exactly the crash-fault detection time.
    """
    if n < 1:
        raise InvalidProblemError(f"n must be at least 1, got {n}")
    visits = first_visits(trajectories, point)
    if len(visits) < n:
        return math.inf
    return visits[n - 1].time


def visit_count_by_time(
    trajectories: Sequence[Trajectory], point: RayPoint, deadline: float
) -> int:
    """Number of distinct robots that have visited ``point`` by ``deadline``."""
    return sum(1 for visit in first_visits(trajectories, point) if visit.time <= deadline)


def covering_robots(
    trajectories: Sequence[Trajectory], point: RayPoint, deadline: float
) -> List[int]:
    """Indices of the robots that visit ``point`` no later than ``deadline``."""
    return [
        visit.robot
        for visit in first_visits(trajectories, point)
        if visit.time <= deadline
    ]


# ----------------------------------------------------------------------
# Batched order statistics (the vectorized engine's primitives)
# ----------------------------------------------------------------------
def first_arrival_matrix(
    trajectories: Sequence[Trajectory], ray: int, distances: np.ndarray
) -> np.ndarray:
    """The ``(robots, targets)`` matrix of first arrival times on one ray.

    Row ``r`` holds robot ``r``'s first arrival at every queried distance
    (``inf`` where it never visits).  Built from the trajectories' cached
    compiled forms, so a batch of targets costs one ``np.searchsorted`` per
    robot instead of a Python loop per (robot, target) pair.
    """
    distances = np.asarray(distances, dtype=float)
    if not trajectories:
        return np.full((0, distances.size), math.inf)
    return np.vstack(
        [t.compiled().first_arrival_times(ray, distances) for t in trajectories]
    )


def order_statistic_times(matrix: np.ndarray, n: int) -> np.ndarray:
    """Per-column ``n``-th smallest arrival time of an arrival matrix.

    With ``n = f + 1`` this is the crash-fault confirmation time of every
    target at once; columns with fewer than ``n`` finite entries come out
    as ``inf`` because the missing arrivals already are ``inf``.
    """
    if n < 1:
        raise InvalidProblemError(f"n must be at least 1, got {n}")
    if matrix.shape[0] < n:
        return np.full(matrix.shape[1], math.inf)
    if n == 1:
        return matrix.min(axis=0)
    return np.partition(matrix, n - 1, axis=0)[n - 1]


def nth_distinct_visit_times(
    trajectories: Sequence[Trajectory], ray: int, distances: np.ndarray, n: int
) -> np.ndarray:
    """Batched :func:`nth_distinct_visit_time` over distances on one ray."""
    return order_statistic_times(first_arrival_matrix(trajectories, ray, distances), n)

"""NumPy-lowered trajectories for batched first-arrival queries.

The scalar :class:`~repro.geometry.trajectory.Trajectory` answers one
first-arrival query at a time.  The hot paths of the library — the
adversary's best response and the ratio-profile curves — ask the same
question for *thousands* of target distances on the same ray, which makes
the per-call Python overhead dominate.  This module lowers a trajectory's
per-ray arrival pieces into sorted NumPy arrays once, after which a batch of
``T`` queries costs a single ``np.searchsorted`` plus one gather:

* on piece ``i`` (distances in ``(breakpoints[i], reaches[i]]``) the first
  arrival time is ``offsets[i] + x`` — the robot reaches ``x`` on its way
  out during a fixed outward segment;
* beyond ``reaches[-1]`` the point is never visited (``inf``);
* the origin is visited at time 0 regardless of the ray.

Use :meth:`Trajectory.compiled` to obtain the (cached) compiled form; the
scalar trajectory remains the reference oracle and the two are checked
against each other to 1e-9 by ``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from .trajectory import _EPS, Trajectory

__all__ = ["CompiledRay", "CompiledTrajectory"]


@dataclass(frozen=True)
class CompiledRay:
    """The first-arrival-time function of one robot on one ray, as arrays.

    Attributes
    ----------
    breakpoints:
        Piece lower radii — the frontier already covered when each outward
        extension starts.  ``breakpoints[0]`` is 0; the array is strictly
        increasing.
    reaches:
        Piece upper radii (the frontier after each extension), strictly
        increasing; ``reaches[-1]`` is the farthest distance ever visited.
    offsets:
        Arrival-offset constants ``c``: the first arrival at distance ``x``
        in piece ``i`` is ``offsets[i] + x``.
    """

    breakpoints: np.ndarray
    reaches: np.ndarray
    offsets: np.ndarray

    @property
    def max_reach(self) -> float:
        """Farthest distance from the origin ever visited on this ray."""
        return float(self.reaches[-1])


class CompiledTrajectory:
    """Per-ray compiled arrival functions of one trajectory.

    Built from (and cached on) a :class:`Trajectory`; see the module
    docstring for the representation.
    """

    __slots__ = ("_rays",)

    def __init__(self, trajectory: Trajectory) -> None:
        self._rays: Dict[int, CompiledRay] = {}
        for ray in trajectory.rays_visited():
            frontiers, reaches, offsets = trajectory.arrival_pieces(ray)
            if not reaches:
                continue
            self._rays[ray] = CompiledRay(
                breakpoints=np.asarray(frontiers, dtype=float),
                reaches=np.asarray(reaches, dtype=float),
                offsets=np.asarray(offsets, dtype=float),
            )

    def rays(self) -> Iterable[int]:
        """Ray indices on which the trajectory ever moves."""
        return self._rays.keys()

    def ray(self, ray: int) -> Optional[CompiledRay]:
        """The compiled arrival function on ``ray`` (``None`` if never visited)."""
        return self._rays.get(ray)

    def max_reach(self, ray: int) -> float:
        """Farthest distance ever visited on ``ray`` (0 when never visited)."""
        data = self._rays.get(ray)
        return data.max_reach if data is not None else 0.0

    def first_arrival_times(self, ray: int, distances: np.ndarray) -> np.ndarray:
        """First arrival times at a batch of distances on ``ray``.

        Vectorized equivalent of
        :meth:`Trajectory.first_arrival_time`: entries beyond the swept
        frontier are ``inf`` and distances within ``1e-12`` of the origin
        are visited at time 0.  The ``- _EPS`` shift reproduces the scalar
        path's coverage tolerance, so both engines select the same piece
        even exactly at a breakpoint.
        """
        distances = np.asarray(distances, dtype=float)
        out = np.full(distances.shape, math.inf)
        data = self._rays.get(ray)
        if data is not None:
            index = np.searchsorted(data.reaches, distances - _EPS, side="left")
            hit = index < data.reaches.size
            out[hit] = data.offsets[index[hit]] + distances[hit]
        np.copyto(out, 0.0, where=distances <= _EPS)
        return out

"""Strategy interface.

A *strategy* prescribes the motion of every robot.  Because the library
evaluates strategies over a finite target horizon ``[1, N]`` (the paper's
own finite-horizon reduction, Eq. 12), a strategy is asked to *materialise*
its trajectories for a given horizon: the returned trajectories must make
the target detectable for every admissible target up to distance ``N``.

Concrete strategies in this package:

=====================================  =======================================
:class:`~repro.strategies.single_robot.DoublingLineStrategy`
                                        classic cow-path doubling (ratio 9)
:class:`~repro.strategies.single_robot.SingleRobotRayStrategy`
                                        one robot on m rays (Baeza-Yates et al.)
:class:`~repro.strategies.geometric.RoundRobinGeometricStrategy`
                                        the optimal multi-robot strategy that
                                        attains Theorems 1 and 6
:class:`~repro.strategies.geometric.ZigzagGeometricLineStrategy`
                                        the same radii realised as line zigzags
:class:`~repro.strategies.cyclic.CyclicStrategy`
                                        general cyclic strategies (Bernstein,
                                        Finkelstein & Zilberstein)
:class:`~repro.strategies.naive.TrivialStraightStrategy`
                                        ratio-1 strategy for ``k >= m (f+1)``
:class:`~repro.strategies.naive.ReplicationStrategy`
                                        fault-masking by robot replication
                                        (baseline)
:class:`~repro.strategies.naive.PartitionStrategy`
                                        rays partitioned among robots (baseline)
=====================================  =======================================
"""

from __future__ import annotations

import abc
from typing import List, Optional

from ..core.problem import SearchProblem
from ..exceptions import InvalidStrategyError
from ..geometry.trajectory import Trajectory

__all__ = ["Strategy"]


class Strategy(abc.ABC):
    """Abstract base class for collective search strategies.

    Subclasses must implement :meth:`trajectories`; they may override
    :meth:`theoretical_ratio` when a closed-form worst-case ratio is known
    (the benches compare measured against theoretical values).
    """

    #: Human-readable strategy name used in reports and tables.
    name: str = "strategy"

    #: Maximum number of horizons whose materialised trajectories are cached.
    _CACHE_LIMIT = 8

    def __init__(self, problem: SearchProblem) -> None:
        self._problem = problem
        self._trajectory_cache: dict = {}

    @property
    def problem(self) -> SearchProblem:
        """The search problem this strategy was built for."""
        return self._problem

    @property
    def num_robots(self) -> int:
        """Number of robots the strategy controls."""
        return self._problem.num_robots

    @abc.abstractmethod
    def trajectories(self, horizon: float) -> List[Trajectory]:
        """Materialise one trajectory per robot for targets up to ``horizon``.

        Parameters
        ----------
        horizon:
            Largest target distance (from the origin) that the returned
            trajectories must make detectable.  Must be at least the
            problem's ``min_target_distance``.

        Returns
        -------
        list of :class:`~repro.geometry.trajectory.Trajectory`
            Exactly ``problem.num_robots`` trajectories, in robot order.
        """

    def materialise(self, horizon: float) -> List[Trajectory]:
        """Cached :meth:`trajectories` for ``horizon``.

        Repeated evaluations at the same horizon (competitive ratio plus a
        ratio profile, say) reuse the trajectories — and with them the
        compiled NumPy arrival arrays cached on each
        :class:`~repro.geometry.trajectory.Trajectory`.  A small bounded
        cache keeps convergence studies over many horizons from pinning
        every materialisation in memory.
        """
        key = float(horizon)
        cache = self._trajectory_cache
        trajectories = cache.get(key)
        if trajectories is None:
            trajectories = self.trajectories(horizon)
            if len(cache) >= self._CACHE_LIMIT:
                cache.pop(next(iter(cache)))
            cache[key] = trajectories
        return trajectories

    def theoretical_ratio(self) -> Optional[float]:
        """Closed-form worst-case competitive ratio, when known.

        Returns ``None`` for strategies without a published analysis; the
        simulator can still measure their ratio empirically.
        """
        return None

    # ------------------------------------------------------------------
    def _check_horizon(self, horizon: float) -> float:
        if horizon < self._problem.min_target_distance:
            raise InvalidStrategyError(
                f"horizon {horizon} is smaller than the minimum target "
                f"distance {self._problem.min_target_distance}"
            )
        return float(horizon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self._problem.describe()})"

"""Randomized single-robot ray search (related work: Kao–Reif–Tate, Schuierer).

The paper's bounds are for deterministic strategies against an adaptive
adversary.  Its related-work section points to the randomized variant
(Kao, Reif & Tate for the line; Schuierer's lower bound for m rays), where
the searcher draws a random geometric *offset* before starting and the
adversary — oblivious to the coin flips — places the target first.  A
random offset smooths the worst case over a full geometric period:

* the robot performs cyclic excursions with radii ``b^(n + U)`` where
  ``U ~ Uniform[0, m)``;
* for any fixed target, the exponent gap to the next same-ray excursion is
  then uniform on ``[0, m)``, so the *expected* competitive ratio is

  .. math:: 1 + \\frac{2\\,(b^m - 1)}{m\\,(b - 1)\\,\\ln b}

  independently of the target position;
* minimising over the base ``b`` gives the optimal randomized ratio — for
  the line (``m = 2``) this is the classic ``~ 4.5911`` (base
  ``b ~ 3.59``), roughly half of the deterministic 9.

This module provides the closed-form expected ratio, the numerically
optimal base, a sampling strategy class whose concrete samples plug into the
ordinary deterministic simulator, and a Monte-Carlo estimator used by the
tests to confirm the formula.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.bounds import single_robot_ray_ratio
from ..exceptions import InvalidProblemError, InvalidStrategyError
from ..geometry.trajectory import Trajectory, excursion_trajectory

__all__ = [
    "expected_randomized_ratio",
    "optimal_randomized_base",
    "randomized_ray_ratio",
    "RandomizedSingleRobotRayStrategy",
    "monte_carlo_expected_ratio",
]


def expected_randomized_ratio(base: float, num_rays: int) -> float:
    """Expected competitive ratio of the randomized cyclic strategy with base ``b``.

    ``1 + 2 (b^m - 1) / (m (b - 1) ln b)`` — the expectation is over the
    uniform exponent offset, and it is the same for every target position,
    so it is also the (oblivious-adversary) competitive ratio.
    """
    if num_rays < 2:
        raise InvalidProblemError(f"need at least 2 rays, got {num_rays}")
    if base <= 1.0:
        raise InvalidStrategyError(f"base must exceed 1, got {base}")
    m = num_rays
    return 1.0 + 2.0 * (base**m - 1.0) / (m * (base - 1.0) * math.log(base))


def optimal_randomized_base(
    num_rays: int, tolerance: float = 1e-10, max_iterations: int = 200
) -> float:
    """Base minimising :func:`expected_randomized_ratio` (golden-section search).

    For the line the optimum is ``b* ~ 3.5911``; it grows slowly with the
    number of rays.
    """
    if num_rays < 2:
        raise InvalidProblemError(f"need at least 2 rays, got {num_rays}")
    golden = (math.sqrt(5.0) - 1.0) / 2.0
    lo, hi = 1.0 + 1e-9, 64.0
    a = hi - golden * (hi - lo)
    b = lo + golden * (hi - lo)
    fa = expected_randomized_ratio(a, num_rays)
    fb = expected_randomized_ratio(b, num_rays)
    for _ in range(max_iterations):
        if hi - lo < tolerance:
            break
        if fa < fb:
            hi, b, fb = b, a, fa
            a = hi - golden * (hi - lo)
            fa = expected_randomized_ratio(a, num_rays)
        else:
            lo, a, fa = a, b, fb
            b = lo + golden * (hi - lo)
            fb = expected_randomized_ratio(b, num_rays)
    return (lo + hi) / 2.0


def randomized_ray_ratio(num_rays: int) -> float:
    """Optimal expected competitive ratio of randomized search on ``m`` rays.

    For the line this evaluates to ``~ 4.5911`` versus the deterministic 9:
    randomisation roughly halves the overhead, which is the comparison the
    E10-style ablations report.
    """
    return expected_randomized_ratio(optimal_randomized_base(num_rays), num_rays)


@dataclass(frozen=True)
class _SampledSchedule:
    """A concrete (de-randomised) excursion schedule drawn from the strategy."""

    offset: float
    excursions: Tuple[Tuple[int, float], ...]

    def trajectory(self) -> Trajectory:
        """Materialise the sampled schedule as a trajectory."""
        return excursion_trajectory(list(self.excursions))


class RandomizedSingleRobotRayStrategy:
    """Randomized cyclic search of ``m`` rays by a single fault-free robot.

    The strategy is a *distribution* over deterministic schedules: a single
    offset ``U ~ Uniform[0, m)`` shifts every excursion exponent.  Use
    :meth:`sample` to draw concrete schedules (each one can be fed to the
    deterministic simulator) and :meth:`expected_ratio` for the closed form.

    Parameters
    ----------
    num_rays:
        Number of rays ``m >= 2``.
    base:
        Radius growth factor; ``None`` selects the optimal
        :func:`optimal_randomized_base`.
    """

    name = "randomized-single-robot-rays"

    def __init__(self, num_rays: int, base: Optional[float] = None) -> None:
        if num_rays < 2:
            raise InvalidProblemError(f"need at least 2 rays, got {num_rays}")
        self.num_rays = num_rays
        if base is None:
            base = optimal_randomized_base(num_rays)
        if base <= 1.0:
            raise InvalidStrategyError(f"base must exceed 1, got {base}")
        self.base = float(base)

    def expected_ratio(self) -> float:
        """Closed-form expected competitive ratio for this base."""
        return expected_randomized_ratio(self.base, self.num_rays)

    def deterministic_ratio(self) -> float:
        """The deterministic optimum for the same number of rays (for comparison)."""
        return single_robot_ray_ratio(self.num_rays)

    def sample(
        self, rng: random.Random, horizon: float, offset: Optional[float] = None
    ) -> _SampledSchedule:
        """Draw one concrete schedule covering targets up to ``horizon``.

        The excursion with index ``n`` (from a warm-up start below distance
        1) visits ray ``n mod m`` to radius ``base^(n + offset)`` with the
        sampled ``offset``.
        """
        if horizon < 1.0:
            raise InvalidProblemError(f"horizon must be at least 1, got {horizon}")
        if offset is None:
            offset = rng.uniform(0.0, float(self.num_rays))
        if not 0.0 <= offset <= float(self.num_rays):
            raise InvalidStrategyError(
                f"offset must lie in [0, {self.num_rays}], got {offset}"
            )
        m, b = self.num_rays, self.base
        # Start low enough that every ray is swept below distance 1 first
        # even with the largest possible offset.
        start = -int(math.ceil(m + m / math.log(b, 2) + 4))
        end = int(math.ceil(math.log(horizon, b))) + m + 1
        excursions = []
        for n in range(start, end + 1):
            excursions.append((n % m, b ** (n + offset)))
        return _SampledSchedule(offset=offset, excursions=tuple(excursions))


def monte_carlo_expected_ratio(
    strategy: RandomizedSingleRobotRayStrategy,
    targets: Sequence[Tuple[int, float]],
    num_samples: int = 200,
    seed: int = 0,
    horizon: Optional[float] = None,
) -> float:
    """Estimate the expected competitive ratio by sampling offsets.

    For every target ``(ray, distance)`` the first-arrival ratio is averaged
    over ``num_samples`` sampled offsets; the estimator returns the maximum
    of those per-target averages (the oblivious adversary picks the worst
    target, then the coins are flipped).  With enough samples this converges
    to :meth:`RandomizedSingleRobotRayStrategy.expected_ratio` for every
    target, which the property tests check.
    """
    if not targets:
        raise InvalidProblemError("need at least one target")
    if num_samples < 1:
        raise InvalidProblemError("need at least one sample")
    if horizon is None:
        horizon = max(distance for _ray, distance in targets) * 2.0
    rng = random.Random(seed)
    per_target_totals = [0.0 for _ in targets]
    for _ in range(num_samples):
        schedule = strategy.sample(rng, horizon=horizon)
        trajectory = schedule.trajectory()
        for index, (ray, distance) in enumerate(targets):
            arrival = trajectory.first_arrival_time(ray, distance)
            per_target_totals[index] += arrival / distance
    return max(total / num_samples for total in per_target_totals)

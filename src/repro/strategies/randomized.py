"""Randomized single-robot ray search (related work: Kao–Reif–Tate, Schuierer).

The paper's bounds are for deterministic strategies against an adaptive
adversary.  Its related-work section points to the randomized variant
(Kao, Reif & Tate for the line; Schuierer's lower bound for m rays), where
the searcher draws a random geometric *offset* before starting and the
adversary — oblivious to the coin flips — places the target first.  A
random offset smooths the worst case over a full geometric period:

* the robot performs cyclic excursions with radii ``b^(n + U)`` where
  ``U ~ Uniform[0, m)``;
* for any fixed target, the exponent gap to the next same-ray excursion is
  then uniform on ``[0, m)``, so the *expected* competitive ratio is

  .. math:: 1 + \\frac{2\\,(b^m - 1)}{m\\,(b - 1)\\,\\ln b}

  independently of the target position;
* minimising over the base ``b`` gives the optimal randomized ratio — for
  the line (``m = 2``) this is the classic ``~ 4.5911`` (base
  ``b ~ 3.59``), roughly half of the deterministic 9.

This module provides the closed-form expected ratio, the numerically
optimal base, a sampling strategy class whose concrete samples plug into the
ordinary deterministic simulator, and a Monte-Carlo estimator used by the
tests to confirm the formula.

Seeding and reproducibility
---------------------------
Offsets are drawn from an explicit seeded stream — either a
:class:`numpy.random.Generator` built from the ``seed`` argument
(:func:`repro.simulation.monte_carlo.as_generator`) or, for backwards
compatibility of :meth:`RandomizedSingleRobotRayStrategy.sample`, any
object with a ``uniform(a, b)`` method (``random.Random`` included).  The
Monte-Carlo estimator draws the full offset vector once and evaluates it
under the selected engine — ``"vectorized"`` (default, the closed-form
batched schedule of :class:`repro.simulation.monte_carlo.CyclicOffsetSchedule`)
or ``"scalar"`` (materialise a trajectory per offset) — so a fixed seed
yields identical draws for both engines and a bit-identical report per
engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.bounds import single_robot_ray_ratio
from ..exceptions import InvalidProblemError, InvalidStrategyError
from ..geometry.trajectory import Trajectory, excursion_trajectory
from ..simulation.engine import DEFAULT_ENGINE, SCALAR_ENGINE, validate_engine
from ..simulation.monte_carlo import (
    DEFAULT_TRIALS_PER_BATCH,
    CyclicOffsetSchedule,
    SeedLike,
    SequentialEstimator,
    TrialStatistics,
    as_generator,
    cyclic_schedule_indices,
    iter_chunk_seeds,
)

__all__ = [
    "expected_randomized_ratio",
    "optimal_randomized_base",
    "randomized_ray_ratio",
    "RandomizedSingleRobotRayStrategy",
    "RandomizedSearchReport",
    "monte_carlo_ratio_report",
    "monte_carlo_expected_ratio",
]


def expected_randomized_ratio(base: float, num_rays: int) -> float:
    """Expected competitive ratio of the randomized cyclic strategy with base ``b``.

    ``1 + 2 (b^m - 1) / (m (b - 1) ln b)`` — the expectation is over the
    uniform exponent offset, and it is the same for every target position,
    so it is also the (oblivious-adversary) competitive ratio.
    """
    if num_rays < 2:
        raise InvalidProblemError(f"need at least 2 rays, got {num_rays}")
    if base <= 1.0:
        raise InvalidStrategyError(f"base must exceed 1, got {base}")
    m = num_rays
    return 1.0 + 2.0 * (base**m - 1.0) / (m * (base - 1.0) * math.log(base))


def optimal_randomized_base(
    num_rays: int, tolerance: float = 1e-10, max_iterations: int = 200
) -> float:
    """Base minimising :func:`expected_randomized_ratio` (golden-section search).

    For the line the optimum is ``b* ~ 3.5911``; it grows slowly with the
    number of rays.
    """
    if num_rays < 2:
        raise InvalidProblemError(f"need at least 2 rays, got {num_rays}")
    golden = (math.sqrt(5.0) - 1.0) / 2.0
    lo, hi = 1.0 + 1e-9, 64.0
    a = hi - golden * (hi - lo)
    b = lo + golden * (hi - lo)
    fa = expected_randomized_ratio(a, num_rays)
    fb = expected_randomized_ratio(b, num_rays)
    for _ in range(max_iterations):
        if hi - lo < tolerance:
            break
        if fa < fb:
            hi, b, fb = b, a, fa
            a = hi - golden * (hi - lo)
            fa = expected_randomized_ratio(a, num_rays)
        else:
            lo, a, fa = a, b, fb
            b = lo + golden * (hi - lo)
            fb = expected_randomized_ratio(b, num_rays)
    return (lo + hi) / 2.0


def randomized_ray_ratio(num_rays: int) -> float:
    """Optimal expected competitive ratio of randomized search on ``m`` rays.

    For the line this evaluates to ``~ 4.5911`` versus the deterministic 9:
    randomisation roughly halves the overhead, which is the comparison the
    E10-style ablations report.
    """
    return expected_randomized_ratio(optimal_randomized_base(num_rays), num_rays)


@dataclass(frozen=True)
class _SampledSchedule:
    """A concrete (de-randomised) excursion schedule drawn from the strategy."""

    offset: float
    excursions: Tuple[Tuple[int, float], ...]

    def trajectory(self) -> Trajectory:
        """Materialise the sampled schedule as a trajectory."""
        return excursion_trajectory(list(self.excursions))


#: Randomness sources :meth:`RandomizedSingleRobotRayStrategy.sample` accepts:
#: a numpy Generator, any object with ``uniform(a, b)`` (``random.Random``),
#: an integer seed, or None.
OffsetSource = Union[SeedLike, "_HasUniform"]


class _HasUniform:  # pragma: no cover - typing helper only
    def uniform(self, low: float, high: float) -> float: ...


def _draw_offset(rng: OffsetSource, num_rays: int) -> float:
    """Draw one offset uniform on ``[0, m)`` from any supported source."""
    if hasattr(rng, "uniform"):
        return float(rng.uniform(0.0, float(num_rays)))  # type: ignore[union-attr]
    return float(as_generator(rng).uniform(0.0, float(num_rays)))


class RandomizedSingleRobotRayStrategy:
    """Randomized cyclic search of ``m`` rays by a single fault-free robot.

    The strategy is a *distribution* over deterministic schedules: a single
    offset ``U ~ Uniform[0, m)`` shifts every excursion exponent.  Use
    :meth:`sample` to draw concrete schedules (each one can be fed to the
    deterministic simulator), :meth:`sample_offsets` for a whole seeded
    offset vector, and :meth:`expected_ratio` for the closed form.

    Parameters
    ----------
    num_rays:
        Number of rays ``m >= 2``.
    base:
        Radius growth factor; ``None`` selects the optimal
        :func:`optimal_randomized_base`.
    """

    name = "randomized-single-robot-rays"

    def __init__(self, num_rays: int, base: Optional[float] = None) -> None:
        if num_rays < 2:
            raise InvalidProblemError(f"need at least 2 rays, got {num_rays}")
        self.num_rays = num_rays
        if base is None:
            base = optimal_randomized_base(num_rays)
        if base <= 1.0:
            raise InvalidStrategyError(f"base must exceed 1, got {base}")
        self.base = float(base)

    def expected_ratio(self) -> float:
        """Closed-form expected competitive ratio for this base."""
        return expected_randomized_ratio(self.base, self.num_rays)

    def deterministic_ratio(self) -> float:
        """The deterministic optimum for the same number of rays (for comparison)."""
        return single_robot_ray_ratio(self.num_rays)

    def sample_offsets(self, num_samples: int, seed: SeedLike = 0) -> np.ndarray:
        """Draw a seeded vector of offsets, uniform on ``[0, m)``."""
        if num_samples < 1:
            raise InvalidProblemError("need at least one sample")
        return as_generator(seed).uniform(
            0.0, float(self.num_rays), size=num_samples
        )

    def sample(
        self,
        rng: OffsetSource,
        horizon: float,
        offset: Optional[float] = None,
    ) -> _SampledSchedule:
        """Draw one concrete schedule covering targets up to ``horizon``.

        The excursion with index ``n`` (from a warm-up start below distance
        1) visits ray ``n mod m`` to radius ``base^(n + offset)`` with the
        sampled ``offset``.  ``rng`` may be a :class:`numpy.random.Generator`,
        a ``random.Random``, an integer seed, or None; it is ignored when
        ``offset`` is given explicitly.
        """
        if horizon < 1.0:
            raise InvalidProblemError(f"horizon must be at least 1, got {horizon}")
        if offset is None:
            offset = _draw_offset(rng, self.num_rays)
        if not 0.0 <= offset <= float(self.num_rays):
            raise InvalidStrategyError(
                f"offset must lie in [0, {self.num_rays}], got {offset}"
            )
        m, b = self.num_rays, self.base
        excursions = []
        for n in cyclic_schedule_indices(m, b, horizon):
            index = int(n)
            excursions.append((index % m, b ** (index + offset)))
        return _SampledSchedule(offset=float(offset), excursions=tuple(excursions))

    def schedule_plan(self, horizon: float) -> CyclicOffsetSchedule:
        """The batched closed-form evaluator for this strategy and horizon."""
        return CyclicOffsetSchedule.plan(self.num_rays, self.base, horizon)


@dataclass(frozen=True)
class RandomizedSearchReport:
    """Monte-Carlo estimate of the randomized strategy's competitive ratio.

    The oblivious adversary picks the worst target *before* the coins are
    flipped, so the estimator is the maximum over targets of the per-target
    mean ratio.  ``per_target`` keeps the full statistics of every target
    (the expectation is provably target-independent, which makes the
    per-target means a built-in consistency check).
    """

    targets: Tuple[Tuple[int, float], ...]
    per_target: Tuple[TrialStatistics, ...]
    closed_form: float
    engine: str
    seed: Optional[int]
    #: ``None`` for a fixed-count run; for an adaptive run, True when the
    #: worst target's standard error reached the requested ``target_se``.
    converged: Optional[bool] = None

    @property
    def estimate(self) -> float:
        """Maximum per-target mean ratio (the oblivious worst case)."""
        return max(stats.mean for stats in self.per_target)

    @property
    def std_error(self) -> float:
        """Standard error of the worst target's mean."""
        worst = max(self.per_target, key=lambda stats: stats.mean)
        return worst.std_error

    @property
    def num_samples(self) -> int:
        """Sampled offsets per target."""
        return self.per_target[0].num_trials

    def within_standard_errors(self, num_sigmas: float = 3.0) -> bool:
        """True when every target's mean is compatible with the closed form."""
        return all(
            stats.compatible_with(self.closed_form, num_sigmas)
            for stats in self.per_target
        )

    def to_dict(self) -> dict:
        """Plain-dict form (for JSON rendering and the service layer)."""
        return {
            "targets": [list(target) for target in self.targets],
            "closed_form": self.closed_form,
            "estimate": self.estimate,
            "std_error": self.std_error,
            "num_samples": self.num_samples,
            "trials_used": self.num_samples,
            "converged": self.converged,
            "within_3_std_errors": self.within_standard_errors(),
            "engine": self.engine,
            "seed": self.seed,
            "per_target": [stats.to_dict() for stats in self.per_target],
        }


def _offset_ratios(
    strategy: RandomizedSingleRobotRayStrategy,
    offsets: np.ndarray,
    targets: Tuple[Tuple[int, float], ...],
    horizon: float,
    engine: str,
    trials_per_batch: int,
) -> np.ndarray:
    """The ``(offsets, targets)`` ratio matrix for one offset vector."""
    if engine == SCALAR_ENGINE:
        ratios = np.empty((offsets.size, len(targets)))
        for row, offset in enumerate(offsets):
            trajectory = strategy.sample(
                None, horizon=horizon, offset=float(offset)
            ).trajectory()
            for column, (ray, distance) in enumerate(targets):
                ratios[row, column] = (
                    trajectory.first_arrival_time(ray, distance) / distance
                )
        return ratios
    arrivals = strategy.schedule_plan(horizon).arrival_times(
        offsets, targets, trials_per_batch=trials_per_batch
    )
    return arrivals / np.asarray([d for _r, d in targets])


def monte_carlo_ratio_report(
    strategy: RandomizedSingleRobotRayStrategy,
    targets: Sequence[Tuple[int, float]],
    num_samples: int = 200,
    seed: SeedLike = 0,
    horizon: Optional[float] = None,
    engine: str = DEFAULT_ENGINE,
    trials_per_batch: int = DEFAULT_TRIALS_PER_BATCH,
    target_se: Optional[float] = None,
    max_trials: Optional[int] = None,
    chunk_trials: Optional[int] = None,
    on_chunk: Optional[Callable[[int, int, int, float], None]] = None,
) -> RandomizedSearchReport:
    """Estimate the expected competitive ratio by sampling offsets.

    For every target ``(ray, distance)`` the first-arrival ratio is averaged
    over ``num_samples`` sampled offsets.  ``engine="vectorized"`` (default)
    evaluates all (offset, target) pairs through the closed-form batched
    schedule in ``trials_per_batch`` chunks; ``engine="scalar"``
    materialises one trajectory per offset and queries it per target.  Both
    consume the same seeded offset vector and agree to 1e-9.

    Setting any of ``target_se``/``max_trials``/``chunk_trials`` switches
    to *adaptive* (sequential) sampling: offsets are drawn in seeded chunks
    (per-chunk streams from
    :func:`repro.simulation.monte_carlo.iter_chunk_seeds`) and the run
    stops once the *worst* target's standard error reaches ``target_se``,
    or after ``max_trials`` (default ``num_samples``) offsets regardless;
    ``chunk_trials`` defaults to an eighth of the budget.  The chunk
    schedule is a pure function of the arguments, so adaptive runs stay
    bit-reproducible; with all three unset the legacy single-draw path
    runs unchanged.  ``on_chunk(index, size, trials_used, std_error)``
    fires after each evaluated chunk (telemetry hook; never affects
    results).
    """
    if not targets:
        raise InvalidProblemError("need at least one target")
    if num_samples < 1:
        raise InvalidProblemError("need at least one sample")
    engine = validate_engine(engine)
    if horizon is None:
        horizon = max(distance for _ray, distance in targets) * 2.0
    adaptive = (
        target_se is not None or max_trials is not None or chunk_trials is not None
    )
    targets = tuple((int(ray), float(distance)) for ray, distance in targets)

    if not adaptive:
        offsets = strategy.sample_offsets(num_samples, seed)
        ratios = _offset_ratios(
            strategy, offsets, targets, horizon, engine, trials_per_batch
        )
        return RandomizedSearchReport(
            targets=targets,
            per_target=tuple(
                TrialStatistics.from_sample(ratios[:, j]) for j in range(len(targets))
            ),
            closed_form=strategy.expected_ratio(),
            engine=engine,
            seed=seed if isinstance(seed, int) else None,
        )

    estimator = SequentialEstimator(
        max_trials=max_trials if max_trials is not None else num_samples,
        chunk_trials=chunk_trials,
        target_se=target_se,
    )
    chunk_seeds = iter_chunk_seeds(seed)
    chunk_index = 0
    while True:
        size = estimator.next_chunk()
        if size == 0:
            break
        chunk_offsets = strategy.sample_offsets(size, next(chunk_seeds))
        std_error = estimator.add_chunk(
            _offset_ratios(
                strategy, chunk_offsets, targets, horizon, engine, trials_per_batch
            )
        )
        if on_chunk is not None:
            on_chunk(chunk_index, size, estimator.trials_used, std_error)
        chunk_index += 1
    return RandomizedSearchReport(
        targets=targets,
        per_target=estimator.statistics(),
        closed_form=strategy.expected_ratio(),
        engine=engine,
        seed=seed if isinstance(seed, int) else None,
        converged=estimator.converged,
    )


def monte_carlo_expected_ratio(
    strategy: RandomizedSingleRobotRayStrategy,
    targets: Sequence[Tuple[int, float]],
    num_samples: int = 200,
    seed: SeedLike = 0,
    horizon: Optional[float] = None,
    engine: str = DEFAULT_ENGINE,
) -> float:
    """Estimate the expected competitive ratio by sampling offsets.

    Thin wrapper over :func:`monte_carlo_ratio_report` returning only the
    point estimate: the maximum of the per-target average ratios (the
    oblivious adversary picks the worst target, then the coins are
    flipped).  With enough samples this converges to
    :meth:`RandomizedSingleRobotRayStrategy.expected_ratio` for every
    target, which the property tests check.
    """
    report = monte_carlo_ratio_report(
        strategy,
        targets,
        num_samples=num_samples,
        seed=seed,
        horizon=horizon,
        engine=engine,
    )
    return report.estimate

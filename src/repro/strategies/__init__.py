"""Strategy library: optimal constructions, classics, cyclic class, baselines."""

from .base import Strategy
from .cyclic import CyclicStrategy, geometric_radius_schedule
from .geometric import RoundRobinGeometricStrategy, ZigzagGeometricLineStrategy
from .naive import (
    IgnoreFaultsStrategy,
    PartitionStrategy,
    ReplicationStrategy,
    TrivialStraightStrategy,
)
from .optimal import optimal_strategy
from .randomized import (
    RandomizedSearchReport,
    RandomizedSingleRobotRayStrategy,
    expected_randomized_ratio,
    monte_carlo_expected_ratio,
    monte_carlo_ratio_report,
    optimal_randomized_base,
    randomized_ray_ratio,
)
from .single_robot import DoublingLineStrategy, SingleRobotRayStrategy
from .validation import (
    covered_intervals,
    coverage_left_end,
    fruitful_turning_points,
    is_monotone_standard,
    normalise_turning_points,
    validate_trajectory_count,
)

__all__ = [
    "Strategy",
    "CyclicStrategy",
    "geometric_radius_schedule",
    "RoundRobinGeometricStrategy",
    "ZigzagGeometricLineStrategy",
    "IgnoreFaultsStrategy",
    "PartitionStrategy",
    "ReplicationStrategy",
    "TrivialStraightStrategy",
    "optimal_strategy",
    "RandomizedSearchReport",
    "RandomizedSingleRobotRayStrategy",
    "expected_randomized_ratio",
    "monte_carlo_expected_ratio",
    "monte_carlo_ratio_report",
    "optimal_randomized_base",
    "randomized_ray_ratio",
    "DoublingLineStrategy",
    "SingleRobotRayStrategy",
    "covered_intervals",
    "coverage_left_end",
    "fruitful_turning_points",
    "is_monotone_standard",
    "normalise_turning_points",
    "validate_trajectory_count",
]

"""Cyclic strategies (Bernstein, Finkelstein & Zilberstein, IJCAI 2003).

A *cyclic* strategy for ``k`` robots on ``m`` rays advances the search in a
single global cyclic order of rays: the ``n``-th search extension is on ray
``n mod m``, and the robots take turns performing the extensions
(extension ``n`` is executed by robot ``n mod k``), each extension reaching
a prescribed radius ``radii[n]`` that is larger than what the robot
previously explored.

Bernstein et al. resolved the ``f = 0`` time-competitive problem *within
this class* of strategies; the paper under reproduction removes the
restriction and shows the cyclic optimum is globally optimal.  This module
implements the general class so that the E5 bench can compare:

* arbitrary user-supplied radius schedules;
* the geometric schedule ``radii[n] = alpha^n``, which for
  ``alpha = (m/(m-k))^{1/k}`` attains the optimal ``f = 0`` ratio and
  coincides with :class:`~repro.strategies.geometric.RoundRobinGeometricStrategy`
  specialised to ``f = 0``.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.bounds import crash_ray_ratio
from ..core.problem import Regime, SearchProblem, ray_problem
from ..exceptions import InvalidProblemError, InvalidStrategyError
from ..geometry.trajectory import Trajectory, excursion_trajectory
from .base import Strategy

__all__ = ["CyclicStrategy", "geometric_radius_schedule"]


def geometric_radius_schedule(alpha: float, start_exponent: int = 0) -> Callable[[int], float]:
    """Radius schedule ``n -> alpha^(n + start_exponent)`` for cyclic strategies."""
    if alpha <= 1.0:
        raise InvalidStrategyError(f"alpha must exceed 1, got {alpha}")

    def schedule(n: int) -> float:
        return alpha ** (n + start_exponent)

    return schedule


class CyclicStrategy(Strategy):
    """A cyclic multi-robot ray-search strategy with an arbitrary radius schedule.

    Parameters
    ----------
    problem:
        A fault-free (``f = 0``) ray-search problem with ``k < m``; the
        cyclic class was only studied in that regime.  (Faulty variants are
        covered by :class:`~repro.strategies.geometric.RoundRobinGeometricStrategy`.)
    radius_schedule:
        Callable mapping the global extension index ``n = 0, 1, 2, ...`` to
        the radius of that extension.  The schedule must be strictly
        increasing along each robot's subsequence for the strategy to be
        sensible; this is validated lazily when trajectories are built.
        ``None`` selects the optimal geometric schedule with base
        ``alpha* = (m/(m-k))^{1/k}``.
    start_index:
        The global index of the first materialised extension.  Negative
        values prepend extensions with radii below the minimum target
        distance, mirroring the paper's ``j = -2`` convention; the default
        ``-(m * k)`` guarantees that each robot sweeps every ray once below
        distance ``radius_schedule(0)``.
    """

    name = "cyclic"

    def __init__(
        self,
        problem: SearchProblem,
        radius_schedule: Optional[Callable[[int], float]] = None,
        start_index: Optional[int] = None,
    ) -> None:
        if problem.num_faulty != 0:
            raise InvalidProblemError(
                "CyclicStrategy models the fault-free problem of Bernstein et al.; "
                "use RoundRobinGeometricStrategy for faulty robots"
            )
        if problem.regime is Regime.TRIVIAL:
            raise InvalidProblemError(
                "with k >= m the trivial straight strategy is optimal; "
                "cyclic strategies need k < m"
            )
        super().__init__(problem)
        if radius_schedule is None:
            alpha = (problem.m / (problem.m - problem.k)) ** (1.0 / problem.k)
            radius_schedule = geometric_radius_schedule(alpha)
            self._is_optimal_geometric = True
            self.alpha: Optional[float] = alpha
        else:
            self._is_optimal_geometric = False
            self.alpha = None
        self.radius_schedule = radius_schedule
        if start_index is None:
            start_index = -(problem.m * problem.k)
        self.start_index = int(start_index)

    # ------------------------------------------------------------------
    def extension(self, n: int) -> Tuple[int, int, float]:
        """The ``n``-th extension: ``(ray, robot, radius)``.

        Ray and robot are assigned round-robin from the global index; the
        radius comes from the schedule.
        """
        ray = n % self.problem.m
        robot = n % self.problem.k
        radius = float(self.radius_schedule(n))
        if radius <= 0:
            raise InvalidStrategyError(
                f"radius schedule returned a non-positive radius at index {n}"
            )
        return ray, robot, radius

    def extensions_up_to(self, horizon: float) -> List[Tuple[int, int, float]]:
        """All extensions needed so every ray is explored beyond ``horizon``."""
        horizon = self._check_horizon(horizon)
        extensions: List[Tuple[int, int, float]] = []
        reached = [0.0] * self.problem.m
        n = self.start_index
        # Guard against schedules that never reach the horizon.
        max_extensions = 10_000_000
        while min(reached) < horizon:
            ray, robot, radius = self.extension(n)
            extensions.append((ray, robot, radius))
            reached[ray] = max(reached[ray], radius)
            n += 1
            if len(extensions) > max_extensions:  # pragma: no cover - safety net
                raise InvalidStrategyError(
                    "radius schedule failed to reach the horizon after "
                    f"{max_extensions} extensions"
                )
        return extensions

    def trajectories(self, horizon: float) -> List[Trajectory]:
        per_robot: List[List[Tuple[int, float]]] = [
            [] for _ in range(self.problem.k)
        ]
        previous_radius = [0.0] * self.problem.k
        for ray, robot, radius in self.extensions_up_to(horizon):
            if radius <= previous_radius[robot]:
                raise InvalidStrategyError(
                    "cyclic radius schedule is not increasing along robot "
                    f"{robot}: {radius} after {previous_radius[robot]}"
                )
            previous_radius[robot] = radius
            per_robot[robot].append((ray, radius))
        return [excursion_trajectory(schedule) for schedule in per_robot]

    def theoretical_ratio(self) -> Optional[float]:
        """Known only for the optimal geometric schedule (the Theorem 6 value)."""
        if self._is_optimal_geometric:
            return crash_ray_ratio(self.problem.m, self.problem.k, 0)
        return None

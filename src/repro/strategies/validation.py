"""Strategy standardisation and validity checking (Section 2 of the paper).

The lower-bound proof begins by arguing that any line strategy can be
transformed, without loss of generality, into a *standard* one:

1. the robot alternates between turning at positive and negative points;
2. turning points on each side are non-decreasing (a robot never turns in
   territory it has already visited — such turns can be shifted);
3. turning points that are not *fruitful* (whose interval ``[t''_i, t_i]``
   of newly lambda-covered points is empty, Eq. 3) can be skipped.

This module implements those transformations executably, plus the validity
predicates used everywhere else:

* :func:`normalise_turning_points` — steps 1–2;
* :func:`fruitful_turning_points` / :func:`covered_intervals` — Eq. 3, the
  set ``Cov_mu(T)`` a single robot lambda-covers;
* :func:`is_monotone_standard` — check the standard form;
* :func:`validate_trajectory_count` — sanity check used by the simulator.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..exceptions import InvalidStrategyError

__all__ = [
    "normalise_turning_points",
    "is_monotone_standard",
    "fruitful_turning_points",
    "covered_intervals",
    "coverage_left_end",
    "validate_trajectory_count",
]


def is_monotone_standard(turning_points: Sequence[float]) -> bool:
    """Check the standard form: odd- and even-indexed subsequences non-decreasing.

    ``turning_points`` is the alternating sequence ``(t1, t2, t3, ...)``
    of Section 2 (all magnitudes, signs implied by alternation).  The
    standard form requires ``t1 <= t3 <= t5 <= ...`` and
    ``t2 <= t4 <= ...``.
    """
    for index in range(len(turning_points) - 2):
        if turning_points[index] > turning_points[index + 2]:
            return False
    return True


def normalise_turning_points(turning_points: Sequence[float]) -> List[float]:
    """Transform an arbitrary alternating sequence into standard form.

    The paper's argument: if the robot turns at ``x1`` and then at ``-x2``
    with ``x2 < x1``, then for the purposes of ±-covering it may as well
    have turned at ``x2`` instead of ``x1`` (only already-visited territory
    is skipped, and every later visit happens earlier).  Applying the rule
    repeatedly clips every turning point from above by its successor, so
    the resulting sequence is non-decreasing as a whole — which implies the
    standard form ``t1 <= t3 <= ...`` and ``t2 <= t4 <= ...`` used by the
    proof.  A single right-to-left pass of
    ``t_i <- min(t_i, t_{i+1})`` reaches the fixed point.

    The output (a) is non-decreasing and (b) ±-covers at least as much as
    the input for every ``lambda``, *under the paper's preconditions*: the
    input already alternates into unvisited territory (each side's turning
    points non-decreasing — the paper's first reduction) and is a prefix of
    a strategy that keeps exploring (the re-visit of the skipped stretch
    happens on a later leg).  Property (b) is exercised on such inputs by
    the property-based tests; for arbitrary finite sequences only (a) and
    the pointwise domination ``normalised[i] <= original[i]`` are
    guaranteed.
    """
    points = [float(t) for t in turning_points]
    for t in points:
        if t <= 0:
            raise InvalidStrategyError(f"turning points must be positive, got {t}")
    if not points:
        return []
    for index in range(len(points) - 2, -1, -1):
        if points[index] > points[index + 1]:
            points[index] = points[index + 1]
    return points


def coverage_left_end(turning_points: Sequence[float], index: int, mu: float) -> float:
    """The left end ``t''_i`` of the interval lambda-covered at turn ``index``.

    Eq. 3: ``t''_i = max{ (t1 + ... + t_i) / mu , t_{i-1} }``; when this
    exceeds ``t_i`` the turn is not fruitful and ``math.inf`` is returned.
    ``index`` is 0-based.
    """
    if mu <= 0:
        raise InvalidStrategyError(f"mu must be positive, got {mu}")
    if not 0 <= index < len(turning_points):
        raise InvalidStrategyError(
            f"index {index} out of range for {len(turning_points)} turning points"
        )
    prefix = sum(turning_points[: index + 1])
    earliest = prefix / mu
    previous = turning_points[index - 1] if index >= 1 else 0.0
    left = max(earliest, previous)
    if left > turning_points[index]:
        return math.inf
    return left


def fruitful_turning_points(
    turning_points: Sequence[float], mu: float
) -> List[int]:
    """Indices of the fruitful turns (those that lambda-cover a non-empty interval)."""
    return [
        index
        for index in range(len(turning_points))
        if math.isfinite(coverage_left_end(turning_points, index, mu))
    ]


def covered_intervals(
    turning_points: Sequence[float], mu: float
) -> List[Tuple[float, float]]:
    """The set ``Cov_mu(T)`` as a list of intervals ``[t''_i, t_i]``.

    A point ``x`` with ``t''_i <= x <= t_i`` is lambda-covered by the robot
    in the symmetric line-cover setting: the robot has visited both ``x``
    and ``-x`` by time ``lambda x`` (with ``lambda = 2 mu + 1``).
    """
    intervals: List[Tuple[float, float]] = []
    for index in fruitful_turning_points(turning_points, mu):
        left = coverage_left_end(turning_points, index, mu)
        intervals.append((left, float(turning_points[index])))
    return intervals


def validate_trajectory_count(trajectories: Sequence, expected: int) -> None:
    """Raise unless exactly ``expected`` trajectories were supplied."""
    if len(trajectories) != expected:
        raise InvalidStrategyError(
            f"expected {expected} trajectories, got {len(trajectories)}"
        )

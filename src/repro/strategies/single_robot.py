"""Single-robot strategies: the classic cow path and its m-ray extension.

These are the ``k = 1, f = 0`` special cases of the paper's Theorem 6 and
serve as the historical baselines (Beck & Newman 1970; Baeza-Yates,
Culberson & Rawlins 1988/1993):

* :class:`DoublingLineStrategy` — go 1 right, 2 left, 4 right, ...;
  worst-case ratio ``1 + 2 b^2/(b-1)`` for base ``b``, minimised at
  ``b = 2`` with value 9.
* :class:`SingleRobotRayStrategy` — visit the ``m`` rays cyclically with
  radii ``b^0, b^1, b^2, ...``; worst-case ratio ``1 + 2 b^m/(b-1)``,
  minimised at ``b = m/(m-1)`` with value ``1 + 2 m^m/(m-1)^(m-1)``.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.bounds import single_robot_ray_ratio
from ..core.problem import SearchProblem, line_problem, ray_problem
from ..exceptions import InvalidProblemError, InvalidStrategyError
from ..geometry.trajectory import Trajectory, excursion_trajectory, zigzag_trajectory
from .base import Strategy

__all__ = ["DoublingLineStrategy", "SingleRobotRayStrategy"]


class DoublingLineStrategy(Strategy):
    """The classic single-robot linear-search (cow path) strategy.

    The robot walks to ``+b^0``, turns, walks to ``-b^1``, turns, walks to
    ``+b^2`` and so on, doubling (for ``b = 2``) the explored radius at
    every turn.  Against the worst-case target the competitive ratio is
    ``1 + 2 b^2 / (b - 1)``; the optimal base ``b = 2`` yields the famous
    ratio 9.

    Parameters
    ----------
    base:
        Geometric growth factor ``b > 1`` of the turning points.
    start_positive:
        Direction of the first leg.
    problem:
        Optional explicit problem instance; defaults to one fault-free
        robot on the line.
    """

    name = "doubling-line"

    def __init__(
        self,
        base: float = 2.0,
        start_positive: bool = True,
        problem: Optional[SearchProblem] = None,
    ) -> None:
        if base <= 1.0:
            raise InvalidStrategyError(f"base must exceed 1, got {base}")
        problem = problem if problem is not None else line_problem(num_robots=1)
        if problem.num_robots != 1 or problem.num_faulty != 0 or not problem.is_line:
            raise InvalidProblemError(
                "DoublingLineStrategy only applies to one fault-free robot on the line"
            )
        super().__init__(problem)
        self.base = float(base)
        self.start_positive = bool(start_positive)

    def turning_points(self, horizon: float) -> List[float]:
        """The turning-point sequence ``b^0, b^1, ...`` needed for ``horizon``.

        The sequence is long enough that both half-lines are explored beyond
        ``horizon``: the last two turning points are each ``>= horizon``.
        """
        horizon = self._check_horizon(horizon)
        points: List[float] = []
        exponent = 0
        while len(points) < 2 or points[-1] < horizon or points[-2] < horizon:
            points.append(self.base**exponent)
            exponent += 1
        return points

    def trajectories(self, horizon: float) -> List[Trajectory]:
        points = self.turning_points(horizon)
        return [zigzag_trajectory(points, start_positive=self.start_positive)]

    def theoretical_ratio(self) -> float:
        """Worst-case ratio ``1 + 2 b^2/(b - 1)`` (= 9 at ``b = 2``)."""
        return 1.0 + 2.0 * self.base**2 / (self.base - 1.0)


class SingleRobotRayStrategy(Strategy):
    """One fault-free robot searching ``m`` rays cyclically.

    The robot performs excursions on rays ``0, 1, ..., m-1, 0, 1, ...`` with
    radii ``b^0, b^1, b^2, ...``.  The worst-case ratio is
    ``1 + 2 b^m / (b - 1)``, minimised at ``b = m/(m-1)`` where it equals
    ``1 + 2 m^m/(m-1)^(m-1)`` — the value the paper's Theorem 6 specialises
    to for ``k = 1, f = 0``.

    Parameters
    ----------
    num_rays:
        The number of rays ``m >= 2``.
    base:
        Excursion-radius growth factor; ``None`` selects the optimal
        ``m/(m-1)``.
    start_exponent:
        First radius is ``base ** start_exponent``; negative values make
        the robot sweep the region below distance 1 first, which is what
        the worst-case analysis assumes.  The default ``-(m - 1)`` ensures
        every ray is visited at least once before distance 1 is exceeded.
    """

    name = "single-robot-rays"

    def __init__(
        self,
        num_rays: int,
        base: Optional[float] = None,
        start_exponent: Optional[int] = None,
        problem: Optional[SearchProblem] = None,
    ) -> None:
        if num_rays < 2:
            raise InvalidProblemError(
                f"ray search needs at least 2 rays, got {num_rays}"
            )
        problem = problem if problem is not None else ray_problem(num_rays, num_robots=1)
        if problem.num_robots != 1 or problem.num_faulty != 0:
            raise InvalidProblemError(
                "SingleRobotRayStrategy only applies to one fault-free robot"
            )
        if problem.num_rays != num_rays:
            raise InvalidProblemError(
                f"problem has {problem.num_rays} rays but strategy was given {num_rays}"
            )
        super().__init__(problem)
        self.num_rays = num_rays
        if base is None:
            base = num_rays / (num_rays - 1)
        if base <= 1.0:
            raise InvalidStrategyError(f"base must exceed 1, got {base}")
        self.base = float(base)
        self.start_exponent = (
            int(start_exponent) if start_exponent is not None else -(num_rays - 1)
        )

    def excursions(self, horizon: float) -> List[tuple]:
        """``(ray, radius)`` pairs covering targets up to ``horizon``.

        Excursion ``n`` (counting from ``start_exponent``) visits ray
        ``n mod m`` to radius ``base ** n``.  The list extends until every
        ray has been explored beyond ``horizon``.
        """
        horizon = self._check_horizon(horizon)
        pairs: List[tuple] = []
        reached = [0.0] * self.num_rays
        exponent = self.start_exponent
        while min(reached) < horizon:
            ray = (exponent - self.start_exponent) % self.num_rays
            radius = self.base**exponent
            pairs.append((ray, radius))
            reached[ray] = max(reached[ray], radius)
            exponent += 1
        return pairs

    def trajectories(self, horizon: float) -> List[Trajectory]:
        return [excursion_trajectory(self.excursions(horizon))]

    def theoretical_ratio(self) -> float:
        """Worst-case ratio ``1 + 2 b^m / (b - 1)`` of the cyclic sweep."""
        return 1.0 + 2.0 * self.base**self.num_rays / (self.base - 1.0)

    def optimal_ratio(self) -> float:
        """The minimum of :meth:`theoretical_ratio` over the base (paper value)."""
        return single_robot_ray_ratio(self.num_rays)

"""Baseline strategies.

These strategies are either optimal in trivial regimes or natural-but-
suboptimal approaches that the benchmarks compare against the paper's
geometric strategy:

* :class:`TrivialStraightStrategy` — for ``k >= m (f + 1)``: send ``f + 1``
  robots straight out along every ray; competitive ratio exactly 1 (the
  paper's remark after Theorem 1 / Theorem 6).
* :class:`ReplicationStrategy` — mask faults by moving robots in lock-step
  groups of ``f + 1`` and running the fault-free optimal strategy with
  ``floor(k / (f + 1))`` "super-robots".  Always correct, never better than
  the paper's strategy, usually strictly worse — quantified in bench E10.
* :class:`PartitionStrategy` — split the rays among the robots and let each
  robot run a single-robot search on its own bundle, ignoring the other
  robots.  Only correct for ``f = 0``; used as the historical baseline
  (this is the shape of the distance-optimal strategy of Kao, Ma, Sipser &
  Yin, which the paper points out is weak for the *time* measure).
* :class:`IgnoreFaultsStrategy` — run the fault-free optimal strategy even
  though ``f > 0``; the adversary silences the single visiting robot and
  the ratio is infinite.  Demonstrates that fault-awareness is necessary.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.bounds import crash_ray_ratio, single_robot_ray_ratio
from ..core.problem import FaultType, Regime, SearchProblem, ray_problem
from ..exceptions import InvalidProblemError, InvalidStrategyError
from ..geometry.trajectory import (
    Trajectory,
    excursion_trajectory,
    idle_trajectory,
    straight_trajectory,
)
from .base import Strategy
from .cyclic import CyclicStrategy
from .geometric import RoundRobinGeometricStrategy
from .single_robot import SingleRobotRayStrategy

__all__ = [
    "TrivialStraightStrategy",
    "ReplicationStrategy",
    "PartitionStrategy",
    "IgnoreFaultsStrategy",
]


class TrivialStraightStrategy(Strategy):
    """Ratio-1 strategy for the trivial regime ``k >= m (f + 1)``.

    Robot ``r`` walks straight out along ray ``r mod m`` and never turns.
    Each ray receives at least ``f + 1`` robots, so the target at distance
    ``x`` is confirmed at time exactly ``x``.
    """

    name = "trivial-straight"

    def __init__(self, problem: SearchProblem) -> None:
        if problem.regime is not Regime.TRIVIAL:
            raise InvalidProblemError(
                "TrivialStraightStrategy requires k >= m (f + 1); got "
                f"{problem.describe()}"
            )
        super().__init__(problem)

    def trajectories(self, horizon: float) -> List[Trajectory]:
        horizon = self._check_horizon(horizon)
        return [
            straight_trajectory(ray=robot % self.problem.m, distance=horizon)
            for robot in range(self.problem.k)
        ]

    def theoretical_ratio(self) -> float:
        """Exactly 1: every target is confirmed the moment it is reached."""
        return 1.0


class ReplicationStrategy(Strategy):
    """Fault masking by lock-step replication (baseline).

    The ``k`` robots are partitioned into ``g = floor(k / (f + 1))`` groups
    of ``f + 1`` (leftover robots idle at the origin).  Every group moves as
    one fault-free "super-robot", and the ``g`` super-robots run the optimal
    fault-free strategy for ``(m, g)``.  Whenever a group reaches the
    target, at least one member is non-faulty, so correctness is immediate;
    the price is that the effective robot count drops from ``k`` to ``g``,
    giving ratio ``A(m, g, 0) >= A(m, k, f)``.

    Because the Theorem 6 bound depends only on ``rho = m (f+1) / k``,
    replication is *exactly* optimal whenever ``f + 1`` divides ``k`` (no
    robot is wasted and ``rho`` is preserved); with leftover robots it is
    strictly suboptimal.  Bench E10 quantifies the gap.
    """

    name = "replication"

    def __init__(self, problem: SearchProblem) -> None:
        if problem.num_faulty >= problem.num_robots:
            raise InvalidProblemError(
                "replication needs at least one fault-free group (k > f)"
            )
        super().__init__(problem)
        self.group_size = problem.num_faulty + 1
        self.num_groups = problem.num_robots // self.group_size
        if self.num_groups < 1:  # pragma: no cover - excluded by the check above
            raise InvalidProblemError("not enough robots to form a single group")
        self._inner = _fault_free_strategy(problem.m, self.num_groups)

    def trajectories(self, horizon: float) -> List[Trajectory]:
        horizon = self._check_horizon(horizon)
        group_trajectories = self._inner.trajectories(horizon)
        result: List[Trajectory] = []
        for robot in range(self.problem.k):
            group = robot // self.group_size
            if group < self.num_groups:
                result.append(group_trajectories[group])
            else:
                result.append(idle_trajectory())
        return result

    def theoretical_ratio(self) -> float:
        """The fault-free optimum with the reduced robot count, ``A(m, g, 0)``."""
        return crash_ray_ratio(self.problem.m, self.num_groups, 0)


class PartitionStrategy(Strategy):
    """Rays partitioned among robots, each searching its bundle alone.

    Robot ``r`` receives rays ``{i : i mod k == r}`` and runs the optimal
    single-robot strategy on them (a straight walk when the bundle has one
    ray).  Correct only for ``f = 0``.  Its worst-case ratio is
    ``1 + 2 b^b/(b-1)^(b-1)`` for the largest bundle size
    ``b = ceil(m / k)`` — the robots do not help each other, which is
    exactly the weakness of distance-optimal constructions when time is the
    measure.

    When ``k`` divides ``m`` the bundles are even and the partition is in
    fact exactly optimal (``A(m, k, 0)`` reduces to the single-robot bound
    for ``m / k`` rays); with uneven bundles it is strictly suboptimal.
    """

    name = "partition"

    def __init__(self, problem: SearchProblem) -> None:
        if problem.num_faulty != 0:
            raise InvalidProblemError(
                "PartitionStrategy is only correct for fault-free robots"
            )
        if problem.num_robots > problem.num_rays:
            raise InvalidProblemError(
                "PartitionStrategy expects at most one robot per ray (k <= m)"
            )
        super().__init__(problem)
        self.bundles: List[List[int]] = [
            [ray for ray in range(problem.m) if ray % problem.k == robot]
            for robot in range(problem.k)
        ]

    def trajectories(self, horizon: float) -> List[Trajectory]:
        horizon = self._check_horizon(horizon)
        result: List[Trajectory] = []
        for bundle in self.bundles:
            if len(bundle) == 1:
                result.append(straight_trajectory(ray=bundle[0], distance=horizon))
                continue
            inner = SingleRobotRayStrategy(num_rays=len(bundle))
            local = inner.excursions(horizon)
            result.append(
                excursion_trajectory(
                    [(bundle[local_ray], radius) for local_ray, radius in local]
                )
            )
        return result

    def theoretical_ratio(self) -> float:
        """Ratio of the largest bundle: ``single_robot_ray_ratio(ceil(m / k))``."""
        largest = max(len(bundle) for bundle in self.bundles)
        return single_robot_ray_ratio(largest)


class IgnoreFaultsStrategy(Strategy):
    """Run the fault-free optimal strategy while faults are actually present.

    With ``f > 0`` crash faults the adversary silences the first ``f``
    visitors of the target, so the fault-free deadline guarantee is lost:
    detection only happens at the ``(f + 1)``-th distinct visit, which the
    fault-free schedule was never designed to deliver quickly (and, when a
    point is visited by fewer than ``f + 1`` robots in total — e.g. a
    single robot on the line — never happens at all).  The strategy exists
    to demonstrate in tests and bench E2/E10 how much is lost by ignoring
    fault-tolerance; its worst-case ratio has no useful closed form, so
    :meth:`theoretical_ratio` returns ``None`` when ``f > 0``.
    """

    name = "ignore-faults"

    def __init__(self, problem: SearchProblem) -> None:
        super().__init__(problem)
        self._inner = _fault_free_strategy(problem.m, problem.k)

    def trajectories(self, horizon: float) -> List[Trajectory]:
        return self._inner.trajectories(self._check_horizon(horizon))

    def theoretical_ratio(self) -> Optional[float]:
        """The fault-free optimum when ``f = 0``; ``None`` (unknown) otherwise."""
        if self.problem.num_faulty > 0:
            return None
        return self._inner.theoretical_ratio()


def _fault_free_strategy(num_rays: int, num_robots: int) -> Strategy:
    """Optimal fault-free strategy for ``num_robots`` robots on ``num_rays`` rays."""
    problem = ray_problem(num_rays, num_robots, 0)
    if problem.regime is Regime.TRIVIAL:
        return TrivialStraightStrategy(problem)
    if num_robots == 1:
        if num_rays == 2:
            from .single_robot import DoublingLineStrategy

            return DoublingLineStrategy(problem=problem)
        return SingleRobotRayStrategy(num_rays=num_rays, problem=problem)
    return RoundRobinGeometricStrategy(problem)

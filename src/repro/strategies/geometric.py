"""The optimal multi-robot geometric strategy (upper bound of Theorems 1 & 6).

Construction (appendix of the paper, rephrased with 0-based indices and with
``c = f + 1`` denoting the number of distinct robots that must visit every
point):

* Fix a base ``alpha > 1``.  Robot ``r`` visits the rays cyclically
  ``0, 1, ..., m-1, 0, 1, ...``.  On its ``j``-th full cycle (``j`` starts
  at a negative index so that every ray is swept below distance 1 first) the
  excursion on ray ``i`` goes to radius

  .. math:: R_r(i, j) = \\alpha^{\\,k\\,(i + m j) + m r}.

* The exponents that appear on a fixed ray ``i`` over all robots and cycles
  are exactly ``{k i + m t : t \\in \\mathbb{Z}}`` and the excursion with
  parameter ``t`` belongs to robot ``t \\bmod k``.  A target at distance
  ``x`` on ray ``i`` is therefore reached *within the deadline*
  ``lambda x`` by the ``c`` excursions whose exponents lie in
  ``[\\log_\\alpha x, \\log_\\alpha x + m c)`` — consecutive values of ``t``,
  hence ``c`` *distinct* robots (``c <= k``).

* The worst-case competitive ratio of the construction is
  ``1 + 2 alpha^q / (alpha^k - 1)`` with ``q = m c``; minimising over
  ``alpha`` gives ``alpha* = (q/(q-k))^{1/k}`` and ratio exactly
  ``A(m, k, f)`` (Theorem 6), or ``A(k, f)`` (Theorem 1) for ``m = 2``.

The module offers two physical realisations of the same radius schedule:

* :class:`RoundRobinGeometricStrategy` — excursions that return to the
  origin after every sweep (valid for every ``m``); and
* :class:`ZigzagGeometricLineStrategy` — for the line only, the robot turns
  directly from ``+t`` to the next ``-t'`` without stopping at the origin.
  The first-arrival times of the two realisations coincide, which the test
  suite checks.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..core.bounds import (
    crash_ray_ratio,
    geometric_strategy_ratio,
    optimal_geometric_base,
)
from ..core.problem import Regime, SearchProblem
from ..exceptions import InvalidProblemError, InvalidStrategyError
from ..geometry.trajectory import Trajectory, excursion_trajectory, zigzag_trajectory
from .base import Strategy

__all__ = ["RoundRobinGeometricStrategy", "ZigzagGeometricLineStrategy"]


class RoundRobinGeometricStrategy(Strategy):
    """Optimal geometric strategy for ``k`` robots, ``f`` crash faults, ``m`` rays.

    Parameters
    ----------
    problem:
        The search problem; must be in the *interesting* regime
        ``f < k < m (f + 1)`` for the construction to be defined.
    alpha:
        Excursion-radius base.  ``None`` (default) uses the optimal value
        ``(q/(q-k))^{1/k}``; other values are accepted so the ablation
        benches can sweep the base.
    start_cycle:
        Index of the first cycle, the paper's ``j = -2``.  More negative
        values only add (cheap) early excursions below distance 1 and never
        hurt coverage; less negative values may break coverage of targets
        near distance 1 and are rejected if they would.
    """

    name = "round-robin-geometric"

    def __init__(
        self,
        problem: SearchProblem,
        alpha: Optional[float] = None,
        start_cycle: int = -2,
    ) -> None:
        if problem.regime is not Regime.INTERESTING:
            raise InvalidProblemError(
                "the geometric strategy is defined for the interesting regime "
                f"f < k < m(f+1); got {problem.describe()}"
            )
        super().__init__(problem)
        self.required_visits = problem.required_visits
        self.q = problem.q
        if alpha is None:
            alpha = optimal_geometric_base(problem.m, problem.k, problem.f)
        if alpha <= 1.0:
            raise InvalidStrategyError(f"alpha must exceed 1, got {alpha}")
        self.alpha = float(alpha)
        if start_cycle > -2:
            raise InvalidStrategyError(
                "start_cycle must be at most -2 so that every ray is swept "
                f"below the minimum target distance first; got {start_cycle}"
            )
        self.start_cycle = int(start_cycle)

    # ------------------------------------------------------------------
    def radius(self, robot: int, ray: int, cycle: int) -> float:
        """Excursion radius ``alpha^(k (ray + m * cycle) + m * robot)``."""
        m, k = self.problem.m, self.problem.k
        exponent = k * (ray + m * cycle) + m * robot
        return self.alpha**exponent

    def _last_cycle(self, horizon: float) -> int:
        """Smallest cycle index whose excursions exceed the needed radius.

        Coverage of a target at distance ``horizon`` on the worst ray
        requires excursions with exponent up to
        ``log_alpha(horizon) + q``; we add one extra cycle of slack.
        """
        m, k = self.problem.m, self.problem.k
        needed_exponent = math.log(horizon, self.alpha) + self.q
        # Solve k*(i + m*j) + m*r >= needed_exponent in the worst case
        # (i = 0, r = 0): j >= needed_exponent / (k*m).
        return int(math.ceil(needed_exponent / (k * m))) + 1

    def excursion_schedule(self, robot: int, horizon: float) -> List[Tuple[int, float]]:
        """The ``(ray, radius)`` excursion list of one robot up to ``horizon``."""
        horizon = self._check_horizon(horizon)
        last_cycle = self._last_cycle(horizon)
        schedule: List[Tuple[int, float]] = []
        for cycle in range(self.start_cycle, last_cycle + 1):
            for ray in range(self.problem.m):
                schedule.append((ray, self.radius(robot, ray, cycle)))
        return schedule

    def trajectories(self, horizon: float) -> List[Trajectory]:
        return [
            excursion_trajectory(self.excursion_schedule(robot, horizon))
            for robot in range(self.problem.k)
        ]

    def theoretical_ratio(self) -> float:
        """Worst-case ratio ``1 + 2 alpha^q / (alpha^k - 1)`` of this base.

        Equals :func:`~repro.core.bounds.crash_ray_ratio` when ``alpha`` is
        the optimal base.
        """
        return geometric_strategy_ratio(
            self.alpha, self.problem.m, self.problem.k, self.problem.f
        )

    def optimal_ratio(self) -> float:
        """The tight Theorem 6 value ``A(m, k, f)`` this family can reach."""
        return crash_ray_ratio(self.problem.m, self.problem.k, self.problem.f)


class ZigzagGeometricLineStrategy(Strategy):
    """Line-only realisation of the geometric strategy without homing.

    Each robot follows the same radius schedule as
    :class:`RoundRobinGeometricStrategy` (for ``m = 2``), but instead of
    returning to the origin between excursions it turns directly from
    ``+t`` to the next ``-t'``.  On the line the time of first arrival at
    any point is identical for the two realisations, so this class attains
    the same competitive ratio; it exists because the paper's Section 2
    standardises strategies into exactly this zigzag form.
    """

    name = "zigzag-geometric-line"

    def __init__(
        self,
        problem: SearchProblem,
        alpha: Optional[float] = None,
        start_cycle: int = -2,
    ) -> None:
        if not problem.is_line:
            raise InvalidProblemError(
                "ZigzagGeometricLineStrategy is only defined on the line (m = 2)"
            )
        if problem.regime is not Regime.INTERESTING:
            raise InvalidProblemError(
                "the geometric strategy is defined for the interesting regime "
                f"f < k < 2(f+1); got {problem.describe()}"
            )
        super().__init__(problem)
        self._round_robin = RoundRobinGeometricStrategy(
            problem, alpha=alpha, start_cycle=start_cycle
        )
        self.alpha = self._round_robin.alpha

    def turning_points(self, robot: int, horizon: float) -> List[float]:
        """The alternating turning-point magnitudes of one robot.

        These are simply the excursion radii of the round-robin schedule in
        order; odd positions are interpreted as turns on the negative
        half-line by :func:`~repro.geometry.trajectory.zigzag_trajectory`.
        """
        schedule = self._round_robin.excursion_schedule(robot, horizon)
        return [radius for _ray, radius in schedule]

    def trajectories(self, horizon: float) -> List[Trajectory]:
        horizon = self._check_horizon(horizon)
        result = []
        for robot in range(self.problem.k):
            schedule = self._round_robin.excursion_schedule(robot, horizon)
            # The round-robin schedule alternates rays 0, 1, 0, 1, ...; a
            # zigzag starting in the positive direction realises exactly
            # that alternation.
            first_ray = schedule[0][0]
            points = [radius for _ray, radius in schedule]
            result.append(
                zigzag_trajectory(points, start_positive=(first_ray == 0))
            )
        return result

    def theoretical_ratio(self) -> float:
        """Same guarantee as the round-robin realisation."""
        return self._round_robin.theoretical_ratio()

    def optimal_ratio(self) -> float:
        """The tight Theorem 1 value ``A(k, f)``."""
        return self._round_robin.optimal_ratio()

"""Factory for the optimal strategy of a given search problem.

The paper (combined with the upper bounds it cites and re-derives) gives an
optimal strategy for every parameter regime:

* ``k >= m (f + 1)`` — the trivial straight strategy, ratio 1;
* ``f < k < m (f + 1)`` — the round-robin geometric strategy with the
  optimal base, ratio ``A(m, k, f)`` (Theorems 1 and 6);
* ``k == f`` — no strategy exists (:class:`~repro.exceptions.InfeasibleProblemError`).

:func:`optimal_strategy` dispatches accordingly and is the entry point used
by the examples and by most benches.
"""

from __future__ import annotations

from ..core.problem import Regime, SearchProblem
from ..exceptions import InfeasibleProblemError
from .base import Strategy
from .geometric import RoundRobinGeometricStrategy
from .naive import TrivialStraightStrategy
from .single_robot import DoublingLineStrategy, SingleRobotRayStrategy

__all__ = ["optimal_strategy"]


def optimal_strategy(problem: SearchProblem) -> Strategy:
    """Return a strategy attaining the optimal competitive ratio for ``problem``.

    Raises
    ------
    InfeasibleProblemError
        If every robot is faulty (``k == f``), in which case no strategy
        can ever confirm the target.
    """
    regime = problem.regime
    if regime is Regime.IMPOSSIBLE:
        raise InfeasibleProblemError(
            "all robots are faulty; the target location can never be confirmed"
        )
    if regime is Regime.TRIVIAL:
        return TrivialStraightStrategy(problem)
    # Interesting regime.  Single fault-free robot cases get the classic
    # constructions (identical ratio, nicer trajectories for inspection).
    if problem.num_robots == 1 and problem.num_faulty == 0:
        if problem.is_line:
            return DoublingLineStrategy(problem=problem)
        return SingleRobotRayStrategy(num_rays=problem.num_rays, problem=problem)
    return RoundRobinGeometricStrategy(problem)

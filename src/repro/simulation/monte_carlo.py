"""Batched Monte-Carlo engine: seeded RNG streams + vectorized trial evaluation.

The deterministic engine (:mod:`repro.simulation.engine`) batches the
adversary's best response; this module does the same for the library's two
*stochastic* workloads:

1. **Random fault injection** (:mod:`repro.faults.injection`) — sample whole
   matrices of fault subsets, per-robot crash times and target indices from
   one :class:`numpy.random.Generator`, then evaluate every trial's
   detection time in a single vectorized pass over the compiled per-ray
   arrival arrays (:mod:`repro.geometry.compiled`).
2. **Randomized cyclic ray search** (:mod:`repro.strategies.randomized`,
   the Kao–Reif–Tate / Schuierer related-work track) — sample a vector of
   geometric offsets and evaluate all (offset, target) arrival times with a
   closed-form batched schedule instead of materialising one trajectory per
   coin flip.

Seeding and reproducibility
---------------------------
Every public entry point threads an explicit seed (or a ready-made
:class:`numpy.random.Generator`) through :func:`as_generator`; module-level
RNG state is never touched.  A fixed seed therefore yields a bit-identical
report — the sampled fault matrices, crash times, target indices and
offsets are all drawn from the same seeded stream regardless of the
evaluation engine, which is what makes the scalar-versus-batched
differential tests (:mod:`tests.test_mc_engine_equivalence`) meaningful:
both engines consume *identical* trial draws and must agree to 1e-9.
Independent parallel streams (one per sweep row, say) come from
:func:`spawn_seeds`, which derives children via
:class:`numpy.random.SeedSequence` so the per-row results do not depend on
worker scheduling.

Memory layout
-------------
Trials are evaluated in chunks of ``trials_per_batch`` rows so peak memory
stays bounded: the fault workload materialises a ``(chunk, robots)`` slice
of the ``(robots, targets)`` arrival matrix, the offset workload a
``(chunk, excursions)`` radius/prefix-time matrix.  See PERFORMANCE.md for
the trade-off curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import InvalidProblemError
from ..geometry.rays import RayPoint
from ..geometry.trajectory import _EPS, Trajectory
from ..geometry.visits import first_arrival_matrix
from .engine import DEFAULT_ENGINE, SCALAR_ENGINE, validate_engine

__all__ = [
    "SeedLike",
    "as_generator",
    "spawn_seeds",
    "iter_chunk_seeds",
    "SequentialEstimator",
    "TrialStatistics",
    "FaultTrialBatch",
    "sample_fault_trials",
    "target_arrival_matrix",
    "trial_detection_time",
    "fault_detection_times",
    "cyclic_schedule_indices",
    "CyclicOffsetSchedule",
    "DEFAULT_TRIALS_PER_BATCH",
]

#: Anything acceptable as a reproducible randomness source: an integer seed,
#: a ready-made Generator/SeedSequence, or None for OS entropy.
SeedLike = Union[int, np.integer, np.random.Generator, np.random.SeedSequence, None]

#: Default number of trials evaluated per chunk; bounds peak memory at a few
#: megabytes without sacrificing vectorization (see PERFORMANCE.md).
DEFAULT_TRIALS_PER_BATCH = 8192


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Normalise a seed-like value into a :class:`numpy.random.Generator`.

    Generators pass through untouched (so callers can share one stream
    across several sampling steps); everything else goes through
    :func:`numpy.random.default_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, count: int) -> List[int]:
    """Derive ``count`` independent child seeds from one root seed.

    Children are spawned through :class:`numpy.random.SeedSequence`, so the
    streams are statistically independent and — crucially for parallel
    sweeps — depend only on ``(seed, index)``, never on worker scheduling.
    Passing a Generator uses its own bit stream to derive the root entropy.
    """
    if count < 0:
        raise InvalidProblemError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    else:
        root = np.random.SeedSequence(seed)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in root.spawn(count)]


def iter_chunk_seeds(seed: SeedLike) -> Iterator[int]:
    """Endless deterministic stream of per-chunk child seeds.

    ``SeedSequence.spawn`` is stateful (each call advances the spawn key),
    so repeatedly spawning one child walks exactly the same child sequence
    as a single bulk spawn: chunk ``i``'s seed equals
    ``spawn_seeds(seed, n)[i]`` for every ``n > i``.  An adaptive run that
    converges after three chunks therefore consumed precisely the seeds a
    longer run would have — the chunk schedule is a pure function of the
    root seed and the stopping rule, never of how far the run got.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    else:
        root = np.random.SeedSequence(seed)
    while True:
        child = root.spawn(1)[0]
        yield int(child.generate_state(1, dtype=np.uint64)[0])


# ----------------------------------------------------------------------
# Trial statistics
# ----------------------------------------------------------------------
_QUANTILE_LEVELS = (0.5, 0.9, 0.95, 0.99)


def _linear_quantile(ordered: np.ndarray, q: float) -> float:
    """np.quantile's default linear interpolation, but inf-safe.

    NumPy's lerp turns a finite/inf bracket into nan; here a quantile is
    inf exactly when its position falls strictly inside the infinite tail,
    and finite quantiles below the tail stay finite.
    """
    position = q * (ordered.size - 1)
    lower = int(math.floor(position))
    fraction = position - lower
    a = float(ordered[lower])
    if fraction == 0.0:
        return a
    b = float(ordered[min(lower + 1, ordered.size - 1)])
    if not math.isfinite(a) or not math.isfinite(b):
        return b
    return a + (b - a) * fraction


@dataclass(frozen=True)
class TrialStatistics:
    """Summary statistics of one Monte-Carlo sample of ratios.

    ``std_error`` is the standard error of the mean (unbiased sample
    standard deviation over ``sqrt(n)``); ``batch_means`` are the means of
    consecutive equal-size sub-batches — their spread is a cheap
    convergence diagnostic (a drifting estimator shows up as a spread much
    larger than a few standard errors).
    """

    num_trials: int
    mean: float
    std_error: float
    minimum: float
    maximum: float
    quantiles: Tuple[Tuple[float, float], ...]
    batch_means: Tuple[float, ...]

    @classmethod
    def from_sample(cls, values: Sequence[float], num_batches: int = 8) -> "TrialStatistics":
        """Compute the statistics of a flat sample of trial ratios."""
        sample = np.asarray(values, dtype=float).reshape(-1)
        if sample.size == 0:
            raise InvalidProblemError("need at least one trial to summarise")
        finite = np.isfinite(sample)
        with np.errstate(invalid="ignore"):
            mean = float(sample.mean())
            if sample.size > 1 and bool(finite.all()):
                std_error = float(sample.std(ddof=1) / math.sqrt(sample.size))
            else:
                std_error = math.nan if not bool(finite.all()) else 0.0
        ordered = np.sort(sample)
        quantiles = tuple((q, _linear_quantile(ordered, q)) for q in _QUANTILE_LEVELS)
        num_batches = max(1, min(num_batches, sample.size))
        batch_means = tuple(
            float(chunk.mean()) for chunk in np.array_split(sample, num_batches)
        )
        return cls(
            num_trials=int(sample.size),
            mean=mean,
            std_error=std_error,
            minimum=float(sample.min()),
            maximum=float(sample.max()),
            quantiles=quantiles,
            batch_means=batch_means,
        )

    def to_dict(self) -> dict:
        """Strict-JSON-safe dict form; inf/nan floats become strings.

        Quantiles of heavy-tailed samples are routinely infinite (a trial
        whose target is never confirmed), so every float goes through
        :func:`repro.reporting.encode_float` and :meth:`from_dict` restores
        it exactly — the round-trip is lossless including ``inf`` tails.
        """
        from ..reporting import encode_float

        return {
            "num_trials": self.num_trials,
            "mean": encode_float(self.mean),
            "std_error": encode_float(self.std_error),
            "minimum": encode_float(self.minimum),
            "maximum": encode_float(self.maximum),
            "quantiles": [[q, encode_float(v)] for q, v in self.quantiles],
            "batch_means": [encode_float(v) for v in self.batch_means],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrialStatistics":
        """Inverse of :meth:`to_dict` (bit-exact, inf/nan included)."""
        from ..reporting import decode_float

        return cls(
            num_trials=int(payload["num_trials"]),
            mean=decode_float(payload["mean"]),
            std_error=decode_float(payload["std_error"]),
            minimum=decode_float(payload["minimum"]),
            maximum=decode_float(payload["maximum"]),
            quantiles=tuple(
                (float(q), decode_float(v)) for q, v in payload["quantiles"]
            ),
            batch_means=tuple(decode_float(v) for v in payload["batch_means"]),
        )

    def quantile(self, q: float) -> float:
        """One of the precomputed quantiles (0.5, 0.9, 0.95, 0.99)."""
        for level, value in self.quantiles:
            if abs(level - q) < 1e-12:
                return value
        raise InvalidProblemError(
            f"quantile {q} not precomputed; available: {[lv for lv, _ in self.quantiles]}"
        )

    @property
    def half_width_95(self) -> float:
        """Half-width of the normal-approximation 95% confidence interval."""
        return 1.96 * self.std_error

    @property
    def batch_mean_spread(self) -> float:
        """Max minus min of the consecutive batch means (convergence check)."""
        return max(self.batch_means) - min(self.batch_means)

    def compatible_with(self, reference: float, num_sigmas: float = 3.0) -> bool:
        """True when ``reference`` lies within ``num_sigmas`` standard errors."""
        if not math.isfinite(self.std_error):
            return False
        return abs(self.mean - reference) <= num_sigmas * max(self.std_error, 1e-15)


# ----------------------------------------------------------------------
# Sequential (adaptive-precision) estimation
# ----------------------------------------------------------------------
class SequentialEstimator:
    """Accumulate seeded trial chunks until a target standard error.

    The estimator owns the *stopping rule* of an adaptive Monte-Carlo run:
    callers ask :meth:`next_chunk` how many trials to evaluate, feed the
    resulting values back through :meth:`add_chunk`, and stop when
    :attr:`done`.  The rule is a pure function of the accumulated values,
    so a fixed seed (and hence fixed chunk values) always produces the
    same chunk schedule and the same final sample — adaptive runs are as
    bit-reproducible as fixed-count ones.

    Chunks may be 1-D (one value per trial) or 2-D ``(trials, columns)``
    (one row per trial, e.g. per-target ratios); convergence is judged on
    the *worst* column's standard error, mirroring how the randomized
    report quotes the worst target.  A sample containing non-finite values
    has an undefined standard error and never converges — ``max_trials``
    bounds the run regardless.

    ``chunk_trials`` defaults to an eighth of ``max_trials`` (rounded up),
    mirroring the eight batch-mean diagnostics of
    :class:`TrialStatistics`: a run that sets only ``target_se`` still
    gets eight stopping checkpoints.
    """

    def __init__(
        self,
        max_trials: int,
        chunk_trials: Optional[int] = None,
        target_se: Optional[float] = None,
    ) -> None:
        if isinstance(max_trials, bool) or not isinstance(max_trials, int) or max_trials < 1:
            raise InvalidProblemError(
                f"max_trials must be an integer >= 1, got {max_trials!r}"
            )
        if chunk_trials is None:
            chunk_trials = -(-max_trials // 8)
        elif (
            isinstance(chunk_trials, bool)
            or not isinstance(chunk_trials, int)
            or chunk_trials < 1
        ):
            raise InvalidProblemError(
                f"chunk_trials must be an integer >= 1, got {chunk_trials!r}"
            )
        if target_se is not None:
            target_se = float(target_se)
            if not math.isfinite(target_se) or target_se <= 0.0:
                raise InvalidProblemError(
                    f"target_se must be a positive finite number, got {target_se!r}"
                )
        self.max_trials = int(max_trials)
        self.chunk_trials = int(chunk_trials)
        self.target_se = target_se
        self._chunks: List[np.ndarray] = []
        self._trials = 0
        self._converged = False

    @property
    def trials_used(self) -> int:
        """Trials accumulated so far."""
        return self._trials

    @property
    def converged(self) -> bool:
        """True when the target standard error was reached (never without one)."""
        return self._converged

    @property
    def done(self) -> bool:
        """True when the run should stop (converged or budget exhausted)."""
        return self._converged or self._trials >= self.max_trials

    def next_chunk(self) -> int:
        """Trials to evaluate next; 0 when the run is complete."""
        if self.done:
            return 0
        return min(self.chunk_trials, self.max_trials - self._trials)

    def add_chunk(self, values: Sequence[float]) -> float:
        """Accumulate one chunk of trial values; returns the current SE.

        The returned value is the worst-column standard error over
        everything accumulated so far (``nan`` while any value is
        non-finite) — the quantity the stopping rule compares against
        ``target_se``.
        """
        if self.done:
            raise InvalidProblemError("sequential run is already complete")
        chunk = np.asarray(values, dtype=float)
        if chunk.ndim not in (1, 2) or chunk.shape[0] == 0:
            raise InvalidProblemError(
                f"chunk must be a non-empty 1-D or 2-D array, got shape {chunk.shape}"
            )
        if self._chunks and chunk.ndim != self._chunks[0].ndim:
            raise InvalidProblemError("chunk dimensionality changed mid-run")
        if (
            self._chunks
            and chunk.ndim == 2
            and chunk.shape[1] != self._chunks[0].shape[1]
        ):
            raise InvalidProblemError("chunk column count changed mid-run")
        self._chunks.append(chunk)
        self._trials += int(chunk.shape[0])
        std_error = self.std_error()
        if (
            self.target_se is not None
            and math.isfinite(std_error)
            and std_error <= self.target_se
        ):
            self._converged = True
        return std_error

    def sample(self) -> np.ndarray:
        """Everything accumulated so far, concatenated in chunk order.

        Computing :meth:`TrialStatistics.from_sample` over this array is
        bit-identical to a single-shot evaluation of the same draws — the
        chunking never touches the values.
        """
        if not self._chunks:
            raise InvalidProblemError("no chunks accumulated yet")
        if len(self._chunks) == 1:
            return self._chunks[0]
        return np.concatenate(self._chunks, axis=0)

    def std_error(self) -> float:
        """Worst-column standard error of the accumulated sample.

        Matches :meth:`TrialStatistics.from_sample` per column: the
        unbiased sample deviation over ``sqrt(n)`` when every value is
        finite and ``n > 1``; ``nan`` with any non-finite value; 0 for a
        single finite trial.
        """
        sample = self.sample()
        columns = sample.reshape(sample.shape[0], -1)
        worst = 0.0
        for j in range(columns.shape[1]):
            column = columns[:, j]
            if not bool(np.isfinite(column).all()):
                return math.nan
            if column.size > 1:
                se = float(column.std(ddof=1) / math.sqrt(column.size))
            else:
                se = 0.0
            worst = max(worst, se)
        return worst

    def statistics(self, num_batches: int = 8):
        """The accumulated sample as :class:`TrialStatistics`.

        A 1-D run yields one instance; a 2-D run yields a per-column tuple
        (each column summarised independently, like the randomized
        report's per-target statistics).
        """
        sample = self.sample()
        if sample.ndim == 1:
            return TrialStatistics.from_sample(sample, num_batches=num_batches)
        return tuple(
            TrialStatistics.from_sample(sample[:, j], num_batches=num_batches)
            for j in range(sample.shape[1])
        )


# ----------------------------------------------------------------------
# Fault-injection workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultTrialBatch:
    """One seeded batch of random-fault trials, as matrices.

    Attributes
    ----------
    targets:
        The distinct target pool trials draw from.
    target_indices:
        ``(trials,)`` integer indices into ``targets``.
    fault_matrix:
        ``(trials, robots)`` boolean matrix, True where the robot is faulty
        in that trial.
    crash_times:
        ``(trials, robots)`` report cut-offs: a robot's visit only counts
        when its arrival time is at most its cut-off.  Healthy robots have
        ``inf``; classic silent crash faults have 0 (they never report);
        the ``"uniform"`` crash model draws the cut-off uniformly in
        ``[0, horizon]`` so a faulty robot may still report early visits.
    """

    targets: Tuple[RayPoint, ...]
    target_indices: np.ndarray
    fault_matrix: np.ndarray
    crash_times: np.ndarray

    @property
    def num_trials(self) -> int:
        """Number of trials in the batch."""
        return int(self.target_indices.size)

    @property
    def num_robots(self) -> int:
        """Number of robots each trial assigns faults over."""
        return int(self.fault_matrix.shape[1])

    def faulty_robots(self, trial: int) -> Tuple[int, ...]:
        """Sorted indices of the faulty robots in one trial."""
        return tuple(int(r) for r in np.flatnonzero(self.fault_matrix[trial]))

    def target(self, trial: int) -> RayPoint:
        """The target sampled for one trial."""
        return self.targets[int(self.target_indices[trial])]


def sample_fault_trials(
    rng: np.random.Generator,
    num_trials: int,
    num_robots: int,
    num_faulty: int,
    targets: Sequence[RayPoint],
    crash_model: str = "silent",
    horizon: Optional[float] = None,
) -> FaultTrialBatch:
    """Sample a whole batch of fault-injection trials from one stream.

    Fault subsets are uniform over the ``C(num_robots, num_faulty)``
    possibilities (drawn as the first ``f`` entries of a random
    permutation); targets are uniform over the pool.  ``crash_model`` is
    ``"silent"`` (faulty robots never report — the classic crash model) or
    ``"uniform"`` (each faulty robot reports visits up to a cut-off drawn
    uniformly in ``[0, horizon]``).
    """
    if num_trials < 1:
        raise InvalidProblemError("need at least one trial")
    if not targets:
        raise InvalidProblemError("need at least one target to sample from")
    if num_faulty < 0 or num_faulty > num_robots:
        raise InvalidProblemError(
            f"invalid fault count {num_faulty} for {num_robots} robots"
        )
    if crash_model not in ("silent", "uniform"):
        raise InvalidProblemError(
            f"unknown crash model {crash_model!r}; expected 'silent' or 'uniform'"
        )
    if crash_model == "uniform" and (horizon is None or horizon <= 0):
        raise InvalidProblemError("the uniform crash model needs a positive horizon")

    target_indices = rng.integers(0, len(targets), size=num_trials)
    fault_matrix = np.zeros((num_trials, num_robots), dtype=bool)
    if num_faulty > 0:
        # First f entries of a random permutation per row: argsort of iid
        # uniforms is a uniform permutation, so every f-subset is equally
        # likely.
        scores = rng.random((num_trials, num_robots))
        faulty = np.argsort(scores, axis=1, kind="stable")[:, :num_faulty]
        np.put_along_axis(fault_matrix, faulty, True, axis=1)
    if crash_model == "uniform":
        cutoffs = rng.uniform(0.0, float(horizon), size=(num_trials, num_robots))
        crash_times = np.where(fault_matrix, cutoffs, math.inf)
    else:
        crash_times = np.where(fault_matrix, 0.0, math.inf)
    return FaultTrialBatch(
        targets=tuple(targets),
        target_indices=target_indices,
        fault_matrix=fault_matrix,
        crash_times=crash_times,
    )


def target_arrival_matrix(
    trajectories: Sequence[Trajectory], targets: Sequence[RayPoint]
) -> np.ndarray:
    """The ``(robots, targets)`` first-arrival matrix over a mixed-ray pool.

    Groups the pool by ray and delegates each group to
    :func:`repro.geometry.visits.first_arrival_matrix` (one
    ``np.searchsorted`` per robot per ray over the compiled arrival
    arrays), then scatters the columns back into pool order.
    """
    out = np.full((len(trajectories), len(targets)), math.inf)
    by_ray: Dict[int, List[int]] = {}
    for position, target in enumerate(targets):
        by_ray.setdefault(target.ray, []).append(position)
    for ray, positions in sorted(by_ray.items()):
        distances = np.asarray([targets[i].distance for i in positions], dtype=float)
        out[:, positions] = first_arrival_matrix(trajectories, ray, distances)
    return out


def fault_detection_times(
    trajectories: Sequence[Trajectory],
    batch: FaultTrialBatch,
    engine: str = DEFAULT_ENGINE,
    trials_per_batch: int = DEFAULT_TRIALS_PER_BATCH,
) -> np.ndarray:
    """Detection time of every trial in a batch (``inf`` when never confirmed).

    A trial's target is confirmed at the earliest arrival that *counts*: a
    healthy robot's first visit, or a crash-faulty robot's first visit when
    it happens no later than the robot's sampled report cut-off.  The
    vectorized engine evaluates all trials against the shared
    ``(robots, targets)`` compiled arrival matrix in ``trials_per_batch``
    chunks; the scalar engine walks the per-trial reference loop.
    """
    engine = validate_engine(engine)
    if len(trajectories) != batch.num_robots:
        raise InvalidProblemError(
            f"batch was sampled for {batch.num_robots} robots, "
            f"got {len(trajectories)} trajectories"
        )
    if engine == SCALAR_ENGINE:
        return _fault_detection_times_scalar(trajectories, batch)
    return _fault_detection_times_vectorized(trajectories, batch, trials_per_batch)


def trial_detection_time(
    trajectories: Sequence[Trajectory], target: RayPoint, cutoffs: Sequence[float]
) -> float:
    """Reference detection semantics for one trial: earliest counting visit.

    A visit counts when the robot's first arrival is no later than its
    report cut-off (``inf`` for a healthy robot, 0 for a silent crash
    fault).  This single implementation backs both the scalar engine and
    :func:`repro.faults.injection.detection_time_with_crash_times`.
    """
    best = math.inf
    for robot, trajectory in enumerate(trajectories):
        arrival = trajectory.first_arrival_time(target.ray, target.distance)
        if arrival <= cutoffs[robot] and arrival < best:
            best = arrival
    return best


def _fault_detection_times_scalar(
    trajectories: Sequence[Trajectory], batch: FaultTrialBatch
) -> np.ndarray:
    out = np.empty(batch.num_trials)
    for trial in range(batch.num_trials):
        out[trial] = trial_detection_time(
            trajectories, batch.target(trial), batch.crash_times[trial]
        )
    return out


def _fault_detection_times_vectorized(
    trajectories: Sequence[Trajectory],
    batch: FaultTrialBatch,
    trials_per_batch: int,
) -> np.ndarray:
    if trials_per_batch < 1:
        raise InvalidProblemError(
            f"trials_per_batch must be positive, got {trials_per_batch}"
        )
    arrivals = target_arrival_matrix(trajectories, batch.targets)
    out = np.empty(batch.num_trials)
    for lo in range(0, batch.num_trials, trials_per_batch):
        hi = min(lo + trials_per_batch, batch.num_trials)
        chunk = arrivals[:, batch.target_indices[lo:hi]].T  # (chunk, robots)
        counted = np.where(chunk <= batch.crash_times[lo:hi], chunk, math.inf)
        out[lo:hi] = counted.min(axis=1)
    return out


# ----------------------------------------------------------------------
# Randomized cyclic-offset workload
# ----------------------------------------------------------------------
def cyclic_schedule_indices(num_rays: int, base: float, horizon: float) -> np.ndarray:
    """Excursion indices of the randomized cyclic schedule covering ``horizon``.

    Excursion ``n`` visits ray ``n mod m`` to radius ``base**(n + offset)``.
    The start index is low enough that every ray is swept below distance 1
    for any offset in ``[0, m]``; the end index covers ``horizon`` likewise.
    This is the single source of truth shared by the scalar sampler
    (:meth:`repro.strategies.randomized.RandomizedSingleRobotRayStrategy.sample`)
    and the batched evaluator below, so both materialise exactly the same
    excursion sequence.
    """
    if num_rays < 2:
        raise InvalidProblemError(f"need at least 2 rays, got {num_rays}")
    if base <= 1.0:
        raise InvalidProblemError(f"base must exceed 1, got {base}")
    if horizon < 1.0:
        raise InvalidProblemError(f"horizon must be at least 1, got {horizon}")
    m, b = num_rays, base
    start = -int(math.ceil(m + m / math.log(b, 2) + 4))
    end = int(math.ceil(math.log(horizon, b))) + m + 1
    return np.arange(start, end + 1)


@dataclass(frozen=True)
class CyclicOffsetSchedule:
    """Closed-form batched arrival times of the randomized cyclic strategy.

    One sampled offset ``U`` turns the schedule into a concrete trajectory
    whose first arrival at ``(ray, d)`` is *prefix time of the first
    excursion on that ray reaching d* plus ``d``.  Because all offsets
    share the same excursion index range, a whole vector of offsets is
    evaluated as matrices: radii ``base**(n + U)`` (offsets x excursions),
    prefix times as a row-wise cumulative sum (the same left-to-right
    float64 accumulation as the scalar trajectory builder, so both paths
    agree to the last few ulps), and the first-covering excursion per
    (offset, target) via an exponent formula corrected against the actual
    radius values — replicating the scalar path's ``distance - 1e-12``
    coverage tolerance.
    """

    num_rays: int
    base: float
    horizon: float
    indices: np.ndarray

    @classmethod
    def plan(cls, num_rays: int, base: float, horizon: float) -> "CyclicOffsetSchedule":
        """Build the schedule for a strategy's ``(m, base)`` and a horizon."""
        return cls(
            num_rays=num_rays,
            base=float(base),
            horizon=float(horizon),
            indices=cyclic_schedule_indices(num_rays, base, horizon),
        )

    def arrival_times(
        self,
        offsets: np.ndarray,
        targets: Sequence[Tuple[int, float]],
        trials_per_batch: int = DEFAULT_TRIALS_PER_BATCH,
    ) -> np.ndarray:
        """The ``(offsets, targets)`` matrix of first arrival times.

        Entry ``(s, j)`` is the first arrival of the schedule with offset
        ``offsets[s]`` at target ``targets[j] = (ray, distance)`` — equal
        (to 1e-9) to materialising the sampled trajectory and querying
        :meth:`~repro.geometry.trajectory.Trajectory.first_arrival_time`.
        """
        if trials_per_batch < 1:
            raise InvalidProblemError(
                f"trials_per_batch must be positive, got {trials_per_batch}"
            )
        offsets = np.asarray(offsets, dtype=float).reshape(-1)
        if offsets.size and (offsets.min() < 0.0 or offsets.max() > self.num_rays):
            raise InvalidProblemError(
                f"offsets must lie in [0, {self.num_rays}]"
            )
        for ray, distance in targets:
            if not 0 <= ray < self.num_rays:
                raise InvalidProblemError(
                    f"target ray {ray} outside [0, {self.num_rays})"
                )
            if distance > self.horizon:
                raise InvalidProblemError(
                    f"target distance {distance} beyond planned horizon {self.horizon}"
                )
        out = np.empty((offsets.size, len(targets)))
        for lo in range(0, offsets.size, trials_per_batch):
            hi = min(lo + trials_per_batch, offsets.size)
            out[lo:hi] = self._arrival_chunk(offsets[lo:hi], targets)
        return out

    def _arrival_chunk(
        self, offsets: np.ndarray, targets: Sequence[Tuple[int, float]]
    ) -> np.ndarray:
        m, b = self.num_rays, self.base
        n = self.indices
        start = int(n[0])
        # Radii and prefix times, (chunk, excursions).  The cumulative sum
        # accumulates 2*radius left to right exactly like the scalar
        # excursion builder's running clock.
        radii = b ** (n[None, :] + offsets[:, None])
        prefix = np.zeros_like(radii)
        np.cumsum(2.0 * radii[:, :-1], axis=1, out=prefix[:, 1:])
        log_b = math.log(b)
        out = np.empty((offsets.size, len(targets)))
        for j, (ray, distance) in enumerate(targets):
            if distance <= _EPS:
                out[:, j] = 0.0
                continue
            covered = distance - _EPS  # the scalar path's coverage tolerance
            # Smallest excursion index on the ray whose radius covers the
            # target: guess from the exponent, then correct by comparing
            # the actual (identically computed) radii.
            guess = np.floor(math.log(covered) / log_b - offsets).astype(int)
            n0 = guess + 1 + (ray - (guess + 1)) % m
            first_on_ray = start + (ray - start) % m
            for _ in range(2):  # the log guess is off by at most one ulp-step
                lower = n0 - m
                step_down = (lower >= first_on_ray) & (b ** (lower + offsets) >= covered)
                n0 = np.where(step_down, lower, n0)
            for _ in range(2):
                step_up = b ** (n0 + offsets) < covered
                n0 = np.where(step_up, n0 + m, n0)
            n0 = np.maximum(n0, first_on_ray)
            piece = n0 - start
            in_range = piece < n.size
            piece = np.minimum(piece, n.size - 1)
            arrivals = prefix[np.arange(offsets.size), piece] + distance
            out[:, j] = np.where(in_range, arrivals, math.inf)
        return out

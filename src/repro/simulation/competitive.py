"""Competitive-ratio evaluation.

The competitive ratio of a strategy is the supremum over admissible targets
of ``detection_time(x) / |x|``.  Because every robot moves at unit speed,
the detection time on a fixed ray is piecewise of the form ``c + x`` between
finitely many breakpoints (the swept radii), so the supremum over a finite
horizon ``[1, N]`` is computed *exactly* by evaluating the finitely many
candidate targets produced by :func:`repro.faults.adversary.candidate_targets`
(each nudged just beyond its breakpoint).  A uniform verification grid can be
added for defence in depth; it never changes the result beyond the nudge
epsilon and is exercised by the test suite.

The headline entry points are:

* :func:`evaluate_strategy` — measure a :class:`~repro.strategies.base.Strategy`
  on a horizon, returning a :class:`CompetitiveRatioResult` with the worst
  target, the measured ratio and the strategy's theoretical ratio;
* :func:`evaluate_trajectories` — the same for raw trajectories;
* :func:`ratio_profile` — the full ratio-versus-distance curve used by the
  convergence analysis and the examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.problem import SearchProblem
from ..exceptions import TargetNotDetectedError
from ..faults.adversary import Adversary, AdversaryChoice
from ..faults.models import FaultModel, fault_model_for
from ..geometry.rays import RayPoint
from ..geometry.trajectory import Trajectory
from ..strategies.base import Strategy
from ..strategies.validation import validate_trajectory_count
from .detection import DetectionOutcome, detect
from .engine import (
    DEFAULT_ENGINE,
    VECTORIZED_ENGINE,
    detection_outcomes,
    supports_vectorized,
    validate_engine,
)

__all__ = [
    "CompetitiveRatioResult",
    "evaluate_trajectories",
    "evaluate_strategy",
    "ratio_profile",
    "grid_targets",
]


@dataclass(frozen=True)
class CompetitiveRatioResult:
    """Outcome of measuring a strategy's competitive ratio on a finite horizon.

    Attributes
    ----------
    ratio:
        The measured supremum of ``detection_time / distance`` over the
        evaluated targets (``math.inf`` when some target is never
        confirmed).
    worst_case:
        The adversary's best response (target + fault set) achieving
        ``ratio``.
    horizon:
        The largest target distance that was considered.
    num_targets_evaluated:
        Number of candidate targets inspected.
    theoretical_ratio:
        The strategy's closed-form guarantee when one is known.
    """

    ratio: float
    worst_case: AdversaryChoice
    horizon: float
    num_targets_evaluated: int
    theoretical_ratio: Optional[float] = None

    @property
    def within_guarantee(self) -> Optional[bool]:
        """True when the measured ratio does not exceed the theoretical one.

        ``None`` when no theoretical ratio is known.  A tiny tolerance
        absorbs the breakpoint nudge.
        """
        if self.theoretical_ratio is None:
            return None
        return self.ratio <= self.theoretical_ratio * (1.0 + 1e-6)

    def to_dict(self) -> dict:
        """Plain-dict form (for JSON rendering and the service layer)."""
        return {
            "ratio": self.ratio,
            "horizon": self.horizon,
            "num_targets_evaluated": self.num_targets_evaluated,
            "theoretical_ratio": self.theoretical_ratio,
            "within_guarantee": self.within_guarantee,
            "worst_case": {
                "target": {
                    "ray": self.worst_case.target.ray,
                    "distance": self.worst_case.target.distance,
                },
                "faulty_robots": list(self.worst_case.faulty_robots),
                "detection_time": self.worst_case.detection_time,
                "ratio": self.worst_case.ratio,
            },
        }


def grid_targets(
    num_rays: int,
    min_distance: float,
    horizon: float,
    points_per_ray: int = 200,
    geometric: bool = True,
) -> List[RayPoint]:
    """A verification grid of targets, geometric or uniform per ray.

    The exact evaluation uses breakpoints only; this grid exists so tests
    and benches can cross-check that no target between breakpoints ever
    beats the breakpoint supremum (it cannot, by the piecewise argument).
    """
    if horizon < min_distance:
        raise TargetNotDetectedError(
            f"horizon {horizon} is below the minimum distance {min_distance}"
        )
    if geometric:
        distances = np.geomspace(min_distance, horizon, points_per_ray)
    else:
        distances = np.linspace(min_distance, horizon, points_per_ray)
    return [
        RayPoint(ray=ray, distance=float(distance))
        for ray in range(num_rays)
        for distance in distances
    ]


def evaluate_trajectories(
    trajectories: Sequence[Trajectory],
    problem: SearchProblem,
    horizon: float,
    fault_model: Optional[FaultModel] = None,
    extra_targets: Sequence[RayPoint] = (),
    theoretical_ratio: Optional[float] = None,
    engine: str = DEFAULT_ENGINE,
) -> CompetitiveRatioResult:
    """Measure the competitive ratio of raw trajectories over ``[1, horizon]``.

    ``engine`` selects the evaluation engine: ``"vectorized"`` (default,
    batched NumPy) or ``"scalar"`` (the per-target reference oracle).
    """
    validate_trajectory_count(trajectories, problem.num_robots)
    model = fault_model if fault_model is not None else fault_model_for(problem)
    adversary = Adversary(problem, fault_model=model)
    best = adversary.best_response(
        trajectories, horizon, extra_targets=extra_targets, engine=engine
    )
    return CompetitiveRatioResult(
        ratio=best.ratio,
        worst_case=best,
        horizon=float(horizon),
        num_targets_evaluated=best.num_targets,
        theoretical_ratio=theoretical_ratio,
    )


def evaluate_strategy(
    strategy: Strategy,
    horizon: float,
    fault_model: Optional[FaultModel] = None,
    extra_targets: Sequence[RayPoint] = (),
    engine: str = DEFAULT_ENGINE,
) -> CompetitiveRatioResult:
    """Measure the competitive ratio of a :class:`Strategy` over ``[1, horizon]``.

    The strategy materialises its trajectories for the horizon first (the
    materialisation is cached on the strategy, so follow-up evaluations at
    the same horizon are free); its closed-form guarantee (when available)
    is attached to the result so callers can check
    ``result.within_guarantee``.
    """
    trajectories = strategy.materialise(horizon)
    return evaluate_trajectories(
        trajectories,
        problem=strategy.problem,
        horizon=horizon,
        fault_model=fault_model,
        extra_targets=extra_targets,
        theoretical_ratio=strategy.theoretical_ratio(),
        engine=engine,
    )


def ratio_profile(
    strategy: Strategy,
    horizon: float,
    points_per_ray: int = 400,
    fault_model: Optional[FaultModel] = None,
    engine: str = DEFAULT_ENGINE,
) -> List[DetectionOutcome]:
    """Detection outcomes on a geometric grid of targets (the ratio curve).

    Useful for plotting/printing how the ratio oscillates below its
    supremum, and for convergence studies: the envelope of the curve
    approaches the theoretical ratio as the horizon grows.  The vectorized
    engine (default) computes all arrival times per ray in one batch; the
    scalar engine calls :func:`detect` per target.
    """
    problem = strategy.problem
    model = fault_model if fault_model is not None else fault_model_for(problem)
    trajectories = strategy.materialise(horizon)
    targets = grid_targets(
        problem.num_rays, problem.min_target_distance, horizon, points_per_ray
    )
    engine = validate_engine(engine)
    if engine == VECTORIZED_ENGINE and supports_vectorized(model):
        return detection_outcomes(trajectories, targets, model)
    return [
        detect(trajectories, target, problem, fault_model=model) for target in targets
    ]

"""Target-detection semantics.

Given concrete robot trajectories, a target location and a fault model,
this module answers "when is the target confirmed, and by whom?".  It is a
thin, well-tested layer over :mod:`repro.geometry.visits` and
:mod:`repro.faults.models` that the competitive-ratio evaluator and the
event timeline both build on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.problem import SearchProblem
from ..exceptions import TargetNotDetectedError
from ..faults.models import FaultModel, fault_model_for
from ..geometry.rays import RayPoint
from ..geometry.trajectory import Trajectory
from ..geometry.visits import Visit, first_visits

__all__ = ["DetectionOutcome", "detect"]


@dataclass(frozen=True)
class DetectionOutcome:
    """Everything the library knows about one target-detection instance.

    Attributes
    ----------
    target:
        The target location that was evaluated.
    visits:
        First arrivals of every robot that ever reaches the target, sorted
        by time.
    faulty_robots:
        The adversary's worst-case fault assignment for this target.
    confirming_robot:
        The robot whose visit confirms the target (``None`` when the target
        is never confirmed).
    detection_time:
        Time of confirmation (``math.inf`` when never).
    ratio:
        ``detection_time / target.distance``.
    """

    target: RayPoint
    visits: tuple
    faulty_robots: tuple
    confirming_robot: Optional[int]
    detection_time: float
    ratio: float

    @property
    def detected(self) -> bool:
        """True when the target is eventually confirmed."""
        return math.isfinite(self.detection_time)


def detect(
    trajectories: Sequence[Trajectory],
    target: RayPoint,
    problem: SearchProblem,
    fault_model: Optional[FaultModel] = None,
    require_detection: bool = False,
) -> DetectionOutcome:
    """Evaluate detection of ``target`` by ``trajectories`` under ``problem``.

    Parameters
    ----------
    require_detection:
        When True, raise :class:`~repro.exceptions.TargetNotDetectedError`
        instead of returning an infinite detection time.
    """
    model = fault_model if fault_model is not None else fault_model_for(problem)
    visits = first_visits(trajectories, target)
    detection_time = model.confirmation_time(visits)
    faulty = tuple(model.adversarial_fault_set(visits))
    confirming: Optional[int] = None
    if math.isfinite(detection_time):
        confirming = visits[model.required_visits - 1].robot
    elif require_detection:
        raise TargetNotDetectedError(
            f"target at ray {target.ray}, distance {target.distance} is never "
            f"confirmed (only {len(visits)} of the required "
            f"{model.required_visits} robots reach it)"
        )
    ratio = detection_time / target.distance if target.distance > 0 else math.inf
    return DetectionOutcome(
        target=target,
        visits=tuple(visits),
        faulty_robots=faulty,
        confirming_robot=confirming,
        detection_time=detection_time,
        ratio=ratio,
    )

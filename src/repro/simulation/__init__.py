"""Simulation layer: detection semantics, competitive-ratio measurement, timelines."""

from .competitive import (
    CompetitiveRatioResult,
    evaluate_strategy,
    evaluate_trajectories,
    grid_targets,
    ratio_profile,
)
from .detection import DetectionOutcome, detect
from .engine import (
    DEFAULT_ENGINE,
    SCALAR_ENGINE,
    VECTORIZED_ENGINE,
    best_candidate,
    detection_outcomes,
    supports_vectorized,
    validate_engine,
)
from .distance import (
    DedicatedRayStrategy,
    DistanceRatioResult,
    distance_ratio_at,
    evaluate_distance_ratio,
    total_distance_travelled,
)
from .timeline import Event, Timeline, build_timeline

__all__ = [
    "CompetitiveRatioResult",
    "evaluate_strategy",
    "evaluate_trajectories",
    "grid_targets",
    "ratio_profile",
    "DetectionOutcome",
    "detect",
    "DEFAULT_ENGINE",
    "SCALAR_ENGINE",
    "VECTORIZED_ENGINE",
    "best_candidate",
    "detection_outcomes",
    "supports_vectorized",
    "validate_engine",
    "DedicatedRayStrategy",
    "DistanceRatioResult",
    "distance_ratio_at",
    "evaluate_distance_ratio",
    "total_distance_travelled",
    "Event",
    "Timeline",
    "build_timeline",
]

"""Simulation layer: detection semantics, competitive-ratio measurement, timelines."""

from .competitive import (
    CompetitiveRatioResult,
    evaluate_strategy,
    evaluate_trajectories,
    grid_targets,
    ratio_profile,
)
from .detection import DetectionOutcome, detect
from .engine import (
    DEFAULT_ENGINE,
    SCALAR_ENGINE,
    VECTORIZED_ENGINE,
    best_candidate,
    detection_outcomes,
    supports_vectorized,
    validate_engine,
)
from .monte_carlo import (
    DEFAULT_TRIALS_PER_BATCH,
    CyclicOffsetSchedule,
    FaultTrialBatch,
    TrialStatistics,
    as_generator,
    cyclic_schedule_indices,
    fault_detection_times,
    sample_fault_trials,
    spawn_seeds,
    target_arrival_matrix,
)
from .distance import (
    DedicatedRayStrategy,
    DistanceRatioResult,
    distance_ratio_at,
    evaluate_distance_ratio,
    total_distance_travelled,
)
from .timeline import Event, Timeline, build_timeline

__all__ = [
    "CompetitiveRatioResult",
    "evaluate_strategy",
    "evaluate_trajectories",
    "grid_targets",
    "ratio_profile",
    "DetectionOutcome",
    "detect",
    "DEFAULT_ENGINE",
    "SCALAR_ENGINE",
    "VECTORIZED_ENGINE",
    "best_candidate",
    "detection_outcomes",
    "supports_vectorized",
    "validate_engine",
    "DEFAULT_TRIALS_PER_BATCH",
    "CyclicOffsetSchedule",
    "FaultTrialBatch",
    "TrialStatistics",
    "as_generator",
    "cyclic_schedule_indices",
    "fault_detection_times",
    "sample_fault_trials",
    "spawn_seeds",
    "target_arrival_matrix",
    "DedicatedRayStrategy",
    "DistanceRatioResult",
    "distance_ratio_at",
    "evaluate_distance_ratio",
    "total_distance_travelled",
    "Event",
    "Timeline",
    "build_timeline",
]

"""The vectorized evaluation engine: batched adversary and batched detection.

The adversary's exact best response evaluates every candidate target — a
few dozen breakpoints per ray, thousands once a verification grid is added.
The original implementation walked a pure-Python loop per target (allocate
``Visit`` objects, sort them, build an ``AdversaryChoice``), which made the
evaluation cost ``O(targets x robots)`` Python operations.  This module
batches the whole computation per ray:

1. every robot's first arrival at *all* candidate distances is one
   ``np.searchsorted`` over its compiled trajectory
   (:mod:`repro.geometry.compiled`), giving a ``(robots, targets)`` arrival
   matrix;
2. the crash-fault confirmation time of all targets at once is the
   ``(f+1)``-th order statistic per column, via ``np.partition``;
3. the worst target is the argmax of ``confirmation / distance``.

The scalar per-target path is kept as a reference oracle; every public
entry point accepts ``engine="vectorized"`` (the default) or
``engine="scalar"`` and the two are differentially tested to 1e-9 by
``tests/test_engine_equivalence.py``.  Fault models whose confirmation rule
is not a pure order statistic (``is_order_statistic`` False) silently fall
back to the scalar path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import InvalidProblemError
from ..faults.models import FaultModel
from ..geometry.rays import RayPoint
from ..geometry.trajectory import Trajectory
from ..geometry.visits import Visit, first_arrival_matrix, order_statistic_times
from .detection import DetectionOutcome

__all__ = [
    "SCALAR_ENGINE",
    "VECTORIZED_ENGINE",
    "DEFAULT_ENGINE",
    "validate_engine",
    "supports_vectorized",
    "BatchBest",
    "best_candidate",
    "detection_outcomes",
]

#: Name of the per-target pure-Python reference engine.
SCALAR_ENGINE = "scalar"
#: Name of the batched NumPy engine.
VECTORIZED_ENGINE = "vectorized"
#: Engine used when callers do not ask for a specific one.
DEFAULT_ENGINE = VECTORIZED_ENGINE

_ENGINES = (SCALAR_ENGINE, VECTORIZED_ENGINE)


def validate_engine(engine: str) -> str:
    """Check that ``engine`` names a known evaluation engine and return it."""
    if engine not in _ENGINES:
        raise InvalidProblemError(
            f"unknown engine {engine!r}; expected one of {_ENGINES}"
        )
    return engine


def supports_vectorized(fault_model: FaultModel) -> bool:
    """True when the fault model's confirmation rule is a pure order statistic."""
    return bool(getattr(fault_model, "is_order_statistic", False))


@dataclass(frozen=True)
class BatchBest:
    """The argmax of one batched best-response pass.

    ``ratio`` is ``detection_time / distance`` as computed by the batched
    arithmetic; callers wanting the full :class:`AdversaryChoice` (fault
    set, visit order) re-evaluate the single winning target scalar-ly.
    """

    ray: int
    distance: float
    detection_time: float
    ratio: float


def best_candidate(
    trajectories: Sequence[Trajectory],
    fault_model: FaultModel,
    candidates_by_ray: Dict[int, Sequence[float]],
) -> Optional[BatchBest]:
    """The ratio-maximising target among per-ray candidate distances.

    Rays are scanned in ascending order and comparisons are strict, so ties
    resolve to the lowest ray and, within a ray, to the first (smallest)
    candidate — the same tie-breaking as the scalar reference loop.
    Returns ``None`` when every ray's candidate list is empty.
    """
    required = fault_model.required_visits
    best: Optional[BatchBest] = None
    for ray in sorted(candidates_by_ray):
        distances = np.asarray(candidates_by_ray[ray], dtype=float)
        if distances.size == 0:
            continue
        matrix = first_arrival_matrix(trajectories, ray, distances)
        confirmations = order_statistic_times(matrix, required)
        # Non-positive distances (the origin) force an infinite ratio, the
        # scalar engine's convention; computing 0/0 here would yield NaN and
        # poison the argmax.
        with np.errstate(invalid="ignore", divide="ignore"):
            ratios = np.where(distances > 0, confirmations / distances, math.inf)
        index = int(np.argmax(ratios))
        if best is None or ratios[index] > best.ratio:
            best = BatchBest(
                ray=ray,
                distance=float(distances[index]),
                detection_time=float(confirmations[index]),
                ratio=float(ratios[index]),
            )
    return best


def detection_outcomes(
    trajectories: Sequence[Trajectory],
    targets: Sequence[RayPoint],
    fault_model: FaultModel,
) -> List[DetectionOutcome]:
    """Batched :func:`repro.simulation.detection.detect` over many targets.

    Produces the same :class:`DetectionOutcome` objects as the scalar
    ``detect`` loop (visits sorted by ``(time, robot)``, adversarial fault
    set, confirming robot), but computes all arrival times per ray in one
    batch.  Order of the returned list matches the order of ``targets``.
    """
    required = fault_model.required_visits
    num_faulty = fault_model.num_faulty
    outcomes: List[Optional[DetectionOutcome]] = [None] * len(targets)
    by_ray: Dict[int, List[int]] = {}
    for position, target in enumerate(targets):
        by_ray.setdefault(target.ray, []).append(position)
    for ray, positions in sorted(by_ray.items()):
        distances = np.asarray(
            [targets[i].distance for i in positions], dtype=float
        )
        matrix = first_arrival_matrix(trajectories, ray, distances)
        # Stable sort on time keeps equal-time visits in robot order, the
        # ordering of sorted Visit(time, robot) tuples.
        order = np.argsort(matrix, axis=0, kind="stable")
        times = np.take_along_axis(matrix, order, axis=0)
        for column, position in enumerate(positions):
            target = targets[position]
            column_times = times[:, column]
            num_finite = int(np.searchsorted(column_times, math.inf))
            visits = tuple(
                Visit(time=float(column_times[row]), robot=int(order[row, column]))
                for row in range(num_finite)
            )
            detected = num_finite >= required
            detection_time = float(column_times[required - 1]) if detected else math.inf
            confirming = int(order[required - 1, column]) if detected else None
            ratio = (
                detection_time / target.distance
                if target.distance > 0
                else math.inf
            )
            outcomes[position] = DetectionOutcome(
                target=target,
                visits=visits,
                faulty_robots=tuple(
                    visit.robot for visit in visits[:num_faulty]
                ),
                confirming_robot=confirming,
                detection_time=detection_time,
                ratio=ratio,
            )
    return outcomes  # type: ignore[return-value]

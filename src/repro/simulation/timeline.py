"""Event timelines: a discrete-event view of a search execution.

The competitive-ratio machinery never needs an explicit event loop — every
quantity is available in closed form from the trajectories — but a concrete,
ordered list of events is valuable for debugging strategies, for the
examples, and for users who want to drive animations or logs.  This module
reconstructs that event sequence exactly from the same primitives.

Event kinds:

* ``turn`` — a robot reverses direction at the far end of an excursion/leg;
* ``origin`` — a robot passes through or stops at the origin;
* ``visit`` — a robot reaches the target location;
* ``confirm`` — the target is confirmed (the ``(f+1)``-th distinct visit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.problem import SearchProblem
from ..faults.models import FaultModel, fault_model_for
from ..geometry.rays import RayPoint
from ..geometry.trajectory import Trajectory
from .detection import detect

__all__ = ["Event", "Timeline", "build_timeline"]


@dataclass(frozen=True, order=True)
class Event:
    """A single timeline event, ordered by time.

    ``kind`` is one of ``"turn"``, ``"origin"``, ``"visit"``, ``"confirm"``.
    ``robot`` is ``None`` for the collective ``confirm`` event.
    """

    time: float
    kind: str = field(compare=False)
    robot: Optional[int] = field(compare=False, default=None)
    ray: Optional[int] = field(compare=False, default=None)
    distance: Optional[float] = field(compare=False, default=None)

    def describe(self) -> str:
        """Human-readable one-line description of the event."""
        who = "collective" if self.robot is None else f"robot {self.robot}"
        where = ""
        if self.ray is not None and self.distance is not None:
            where = f" at ray {self.ray}, distance {self.distance:.4g}"
        return f"t={self.time:10.4f}  {self.kind:<8s} {who}{where}"

    def to_dict(self) -> dict:
        """Plain-dict form (for JSON rendering and the service layer)."""
        return {
            "time": self.time,
            "kind": self.kind,
            "robot": self.robot,
            "ray": self.ray,
            "distance": self.distance,
        }


@dataclass
class Timeline:
    """An ordered list of events plus the detection outcome that produced it."""

    events: List[Event]
    detection_time: float
    detected: bool

    def until(self, time: float) -> List[Event]:
        """Events that happen no later than ``time``."""
        return [event for event in self.events if event.time <= time]

    def of_kind(self, kind: str) -> List[Event]:
        """Events of a single kind, in order."""
        return [event for event in self.events if event.kind == kind]

    def render(self, limit: Optional[int] = None) -> str:
        """Multi-line plain-text rendering (truncated to ``limit`` events)."""
        rows = [event.describe() for event in self.events]
        if limit is not None and len(rows) > limit:
            omitted = len(rows) - limit
            rows = rows[:limit] + [f"... ({omitted} more events)"]
        return "\n".join(rows)

    def to_dict(self) -> dict:
        """Plain-dict form (for JSON rendering and the service layer)."""
        return {
            "detected": self.detected,
            "detection_time": self.detection_time,
            "num_events": len(self.events),
            "events": [event.to_dict() for event in self.events],
        }


def build_timeline(
    trajectories: Sequence[Trajectory],
    target: RayPoint,
    problem: SearchProblem,
    fault_model: Optional[FaultModel] = None,
    stop_at_confirmation: bool = True,
) -> Timeline:
    """Reconstruct the event sequence of a search execution.

    Parameters
    ----------
    stop_at_confirmation:
        When True (default) events after the confirmation time are dropped —
        in the real execution the robots would stop searching.
    """
    model = fault_model if fault_model is not None else fault_model_for(problem)
    outcome = detect(trajectories, target, problem, fault_model=model)
    cutoff = outcome.detection_time if stop_at_confirmation else math.inf

    events: List[Event] = []
    for robot, trajectory in enumerate(trajectories):
        for segment in trajectory.segments:
            # A "turn" is the far end of an outward segment.
            if segment.end_distance > segment.start_distance:
                if segment.end_time <= cutoff:
                    events.append(
                        Event(
                            time=segment.end_time,
                            kind="turn",
                            robot=robot,
                            ray=segment.ray,
                            distance=segment.end_distance,
                        )
                    )
            elif segment.end_distance <= 1e-12 and segment.end_time <= cutoff:
                events.append(
                    Event(
                        time=segment.end_time,
                        kind="origin",
                        robot=robot,
                        ray=segment.ray,
                        distance=0.0,
                    )
                )
        arrival = trajectory.first_arrival_time(target.ray, target.distance)
        if math.isfinite(arrival) and arrival <= cutoff:
            events.append(
                Event(
                    time=arrival,
                    kind="visit",
                    robot=robot,
                    ray=target.ray,
                    distance=target.distance,
                )
            )
    if outcome.detected and outcome.detection_time <= cutoff:
        events.append(
            Event(
                time=outcome.detection_time,
                kind="confirm",
                robot=outcome.confirming_robot,
                ray=target.ray,
                distance=target.distance,
            )
        )
    events.sort()
    return Timeline(
        events=events,
        detection_time=outcome.detection_time,
        detected=outcome.detected,
    )

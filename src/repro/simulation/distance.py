"""The distance measure: total distance travelled until detection.

Section 3 of the paper contrasts two cost measures for multi-robot search:
the *time* ``T/d`` (the paper's measure, resolved by Theorem 6) and the
*total distance* ``D/d`` travelled by all robots until the target is found
(resolved by Kao, Ma, Sipser & Yin).  The paper remarks that the
distance-optimal strategy "does not really use multiple robots
simultaneously": all but one robot walk straight down a dedicated ray while
the last robot searches the remaining rays alone — a shape that is poor for
the time measure.

This module measures the distance ratio ``D/d`` of arbitrary strategies in
*this library's execution model* (robots move at unit speed until their
trajectory ends, so distance accrues in parallel) and provides the
park-and-search shape as :class:`DedicatedRayStrategy`.  Two honest caveats,
also recorded in DESIGN.md:

* Kao, Ma, Sipser & Yin's distance-optimal results assume processors /
  robots that can idle, so their quantitative bounds are **not** reproduced
  here — only the structural comparison is: under the *time* measure the
  dedicated-ray shape is strictly worse than the paper's collaborative
  optimum (exactly the remark the paper makes).
* With always-moving robots, ``D`` is sandwiched between the detection time
  and ``k`` times the detection time, which the tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.problem import Regime, SearchProblem
from ..exceptions import InvalidProblemError
from ..faults.adversary import candidate_targets
from ..faults.models import FaultModel, fault_model_for
from ..geometry.rays import RayPoint
from ..geometry.trajectory import Trajectory, straight_trajectory, excursion_trajectory
from ..geometry.visits import first_visits
from ..strategies.base import Strategy
from ..strategies.single_robot import SingleRobotRayStrategy

__all__ = [
    "total_distance_travelled",
    "distance_ratio_at",
    "DistanceRatioResult",
    "evaluate_distance_ratio",
    "DedicatedRayStrategy",
]


def total_distance_travelled(trajectories: Sequence[Trajectory], time: float) -> float:
    """Total distance travelled by all robots up to ``time``.

    Robots move at unit speed for as long as their trajectory lasts and then
    stop, so each robot contributes ``min(time, trajectory.total_time)``.
    """
    if time < 0:
        raise InvalidProblemError(f"time must be non-negative, got {time}")
    return sum(min(time, trajectory.total_time) for trajectory in trajectories)


def distance_ratio_at(
    trajectories: Sequence[Trajectory],
    target: RayPoint,
    problem: SearchProblem,
    fault_model: Optional[FaultModel] = None,
) -> float:
    """Distance ratio ``D / d`` for one target under the worst fault set."""
    model = fault_model if fault_model is not None else fault_model_for(problem)
    detection_time = model.confirmation_time(first_visits(trajectories, target))
    if not math.isfinite(detection_time):
        return math.inf
    return total_distance_travelled(trajectories, detection_time) / target.distance


@dataclass(frozen=True)
class DistanceRatioResult:
    """Supremum of the distance ratio over a finite horizon."""

    ratio: float
    worst_target: RayPoint
    horizon: float


def evaluate_distance_ratio(
    strategy: Strategy,
    horizon: float,
    extra_targets: Sequence[RayPoint] = (),
) -> DistanceRatioResult:
    """Measure the distance competitive ratio of a strategy over ``[1, horizon]``.

    The same breakpoint enumeration as the time measure applies: between
    breakpoints the detection time is ``c + x``, the distance travelled is a
    non-decreasing function of the detection time, and dividing by ``x``
    makes the supremum land on (the right limit of) a breakpoint.
    """
    problem = strategy.problem
    trajectories = strategy.trajectories(horizon)
    targets = list(
        candidate_targets(
            trajectories,
            num_rays=problem.num_rays,
            min_distance=problem.min_target_distance,
            horizon=horizon,
        )
    ) + list(extra_targets)
    best_ratio = -math.inf
    best_target = targets[0]
    for target in targets:
        if target.distance > horizon:
            continue
        ratio = distance_ratio_at(trajectories, target, problem)
        if ratio > best_ratio:
            best_ratio = ratio
            best_target = target
    return DistanceRatioResult(ratio=best_ratio, worst_target=best_target, horizon=horizon)


class DedicatedRayStrategy(Strategy):
    """The "all but one robot get a dedicated ray" shape (fault-free robots).

    Robots ``0 .. k-2`` each walk straight out along their own ray; robot
    ``k-1`` performs the optimal single-robot search over the remaining
    ``m - k + 1`` rays.  This is the structure of the distance-optimal
    strategy of Kao, Ma, Sipser & Yin that the paper contrasts with its
    time-optimal collaborative strategies: the robots barely cooperate, so
    under the *time* measure its worst case is the lone searcher's bundle
    ratio — strictly worse than ``A(m, k, 0)`` whenever the bundle has at
    least two rays.
    """

    name = "dedicated-rays"

    def __init__(self, problem: SearchProblem) -> None:
        if problem.num_faulty != 0:
            raise InvalidProblemError(
                "DedicatedRayStrategy is defined for fault-free robots"
            )
        if problem.regime is Regime.TRIVIAL:
            raise InvalidProblemError(
                "with k >= m every ray gets its own robot; use TrivialStraightStrategy"
            )
        super().__init__(problem)
        self.searcher_rays = list(range(problem.k - 1, problem.m))

    def trajectories(self, horizon: float) -> List[Trajectory]:
        horizon = self._check_horizon(horizon)
        result: List[Trajectory] = []
        for robot in range(self.problem.k - 1):
            result.append(straight_trajectory(ray=robot, distance=horizon))
        bundle = self.searcher_rays
        if len(bundle) == 1:
            result.append(straight_trajectory(ray=bundle[0], distance=horizon))
        else:
            inner = SingleRobotRayStrategy(num_rays=len(bundle))
            local = inner.excursions(horizon)
            result.append(
                excursion_trajectory(
                    [(bundle[local_ray], radius) for local_ray, radius in local]
                )
            )
        return result

    def theoretical_ratio(self) -> float:
        """Worst-case *time* ratio: the lone searcher's bundle dominates."""
        from ..core.bounds import single_robot_ray_ratio

        return single_robot_ray_ratio(len(self.searcher_rays))

"""Command-line interface.

``repro-search`` (or ``python -m repro``) exposes the most common queries
without writing any Python:

* ``bounds`` — print the tight competitive ratio for given ``(m, k, f)``;
* ``simulate`` — measure the optimal strategy for ``(m, k, f)`` on a horizon
  and compare against the closed form;
* ``experiments`` — regenerate one or all experiment tables of
  EXPERIMENTS.md;
* ``timeline`` — print the event timeline of a search execution against a
  chosen target;
* ``montecarlo`` — run a seeded Monte-Carlo campaign (random crash faults,
  or the randomized-offset ray search) through the batched engine and
  report trial statistics;
* ``serve`` — start the HTTP evaluation server (:mod:`repro.service`);
  ``--workers`` turns it into a coordinator that pull-dispatches batch
  shards to remote ``repro serve`` instances, with ``--reprobe-interval``
  controlling the background supervisor that heals dead workers and
  ``--worker-timeout``/``--worker-connect-timeout`` bounding one shard's
  read and the TCP dial separately; ``--journal`` makes the coordinator
  durable (jobs journaled to SQLite, replayed and resumed on restart)
  and ``--cache-peers`` lets cache misses consult other nodes'
  ``GET /cache/<key>`` before recomputing;
* ``batch`` — evaluate a JSON file of scenario specs through the batch
  scheduler (dedup + cache + process-pool shards); ``--workers`` adds
  remote executors (same tuning flags as ``serve``), ``--cache-peers``
  consults a running cluster's caches, and ``--async`` runs the batch as
  a background job with live progress on stderr;
* ``cache gc`` — drop on-disk cache entries whose engine version no
  longer matches the running ``ENGINE_VERSION``, and/or compact a job
  journal (``--journal``), dropping rows no current engine can
  reproduce;
* ``experiment run`` — compile a JSON experiment spec (generators ×
  strategies × metrics, see :mod:`repro.experiment`) into one deduped
  batch, evaluate it, and persist the artifact table (``table.json`` +
  ``table.csv``) under a directory keyed by the experiment's content
  hash; same ``--workers``/``--cache-peers`` fan-out flags as ``batch``;
* ``top`` — live telemetry summary of a running ``repro serve`` node:
  counters, gauges and latency percentiles from ``GET /metrics.json``,
  plus the per-worker straggler view from ``GET /workers`` on
  coordinators; refreshes every ``--interval`` seconds (``--once`` for
  a single frame, scriptable with ``--json``);
* ``trace`` — fetch one job's span tree (``GET /trace/<job_id>``) from
  a running server and render it indented, or export Chrome
  ``trace_event`` JSON with ``--chrome`` for ``chrome://tracing`` /
  Perfetto.

Every query subcommand accepts ``--json``, which emits exactly the payload
the HTTP server returns for the equivalent scenario — scripts and the
service share one serialisation path.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import tables as experiment_tables
from .core.bounds import crash_ray_ratio, optimal_geometric_base
from .core.problem import ray_problem
from .exceptions import ReproError
from .geometry.rays import RayPoint
from .reporting import format_value, render_experiment, render_json, render_table
from .simulation.competitive import evaluate_strategy
from .simulation.timeline import build_timeline
from .strategies.optimal import optimal_strategy

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "E1": experiment_tables.e1_theorem1_line,
    "E2": experiment_tables.e2_trivial_regimes,
    "E3": experiment_tables.e3_byzantine_bounds,
    "E4": experiment_tables.e4_theorem6_rays,
    "E5": experiment_tables.e5_parallel_rays,
    "E6": experiment_tables.e6_orc_covering,
    "E7": experiment_tables.e7_fractional,
    "E8": experiment_tables.e8_lemmas,
    "E9": experiment_tables.e9_classics,
    "E10": experiment_tables.e10_alpha_ablation,
    "E11": experiment_tables.e11_connections,
    "E12": experiment_tables.e12_randomized_and_average_case,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description=(
            "Faulty-robot search on the line and on m rays — reproduction of "
            "Kupavskii & Welzl, PODC 2018."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_json_flag(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--json",
            action="store_true",
            help="emit the HTTP-service JSON payload instead of a table",
        )

    bounds_parser = subparsers.add_parser(
        "bounds", help="print the tight competitive-ratio bound A(m, k, f)"
    )
    bounds_parser.add_argument("--rays", "-m", type=int, default=2)
    bounds_parser.add_argument("--robots", "-k", type=int, required=True)
    bounds_parser.add_argument("--faulty", "-f", type=int, default=0)
    add_json_flag(bounds_parser)

    simulate_parser = subparsers.add_parser(
        "simulate", help="measure the optimal strategy against the closed form"
    )
    simulate_parser.add_argument("--rays", "-m", type=int, default=2)
    simulate_parser.add_argument("--robots", "-k", type=int, required=True)
    simulate_parser.add_argument("--faulty", "-f", type=int, default=0)
    simulate_parser.add_argument("--horizon", type=float, default=1e4)
    add_json_flag(simulate_parser)

    experiments_parser = subparsers.add_parser(
        "experiments", help="regenerate experiment tables (EXPERIMENTS.md)"
    )
    experiments_parser.add_argument(
        "--only",
        choices=sorted(_EXPERIMENTS, key=lambda name: int(name[1:])),
        default=None,
        help="run a single experiment instead of all of them",
    )
    experiments_parser.add_argument(
        "--full",
        action="store_true",
        help="use the larger horizons reported in EXPERIMENTS.md",
    )
    add_json_flag(experiments_parser)

    montecarlo_parser = subparsers.add_parser(
        "montecarlo",
        help="seeded Monte-Carlo campaign (batched engine) with trial statistics",
    )
    montecarlo_parser.add_argument(
        "--workload",
        choices=["faults", "randomized"],
        default="faults",
        help="random crash-fault injection, or randomized-offset ray search",
    )
    montecarlo_parser.add_argument("--rays", "-m", type=int, default=2)
    montecarlo_parser.add_argument("--robots", "-k", type=int, default=1)
    montecarlo_parser.add_argument("--faulty", "-f", type=int, default=0)
    montecarlo_parser.add_argument("--trials", type=int, default=2000)
    montecarlo_parser.add_argument("--seed", type=int, default=0)
    montecarlo_parser.add_argument("--horizon", type=float, default=1e3)
    montecarlo_parser.add_argument(
        "--engine", choices=["vectorized", "scalar"], default="vectorized"
    )
    add_json_flag(montecarlo_parser)

    timeline_parser = subparsers.add_parser(
        "timeline", help="print the event timeline of one search execution"
    )
    timeline_parser.add_argument("--rays", "-m", type=int, default=2)
    timeline_parser.add_argument("--robots", "-k", type=int, required=True)
    timeline_parser.add_argument("--faulty", "-f", type=int, default=0)
    timeline_parser.add_argument("--target-ray", type=int, default=0)
    timeline_parser.add_argument("--target-distance", type=float, default=10.0)
    timeline_parser.add_argument("--limit", type=int, default=40)
    add_json_flag(timeline_parser)

    serve_parser = subparsers.add_parser(
        "serve", help="start the HTTP evaluation server (repro.service)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8765, help="0 binds an ephemeral port"
    )
    serve_parser.add_argument(
        "--cache-size", type=int, default=1024, help="in-memory LRU capacity"
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, help="optional on-disk cache directory"
    )
    serve_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="SQLite job journal: jobs are recorded as they run and "
        "replayed on restart (finished jobs rehydrated, interrupted "
        "jobs resumed)",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log one line per request"
    )
    serve_parser.add_argument(
        "--workers",
        action="append",
        default=None,
        metavar="URL[,URL...]",
        help="remote `repro serve` base URLs to dispatch batch shards to "
        "(repeatable, comma-separated values accepted)",
    )
    _add_cache_peer_flag(serve_parser)
    _add_worker_tuning_flags(serve_parser)

    batch_parser = subparsers.add_parser(
        "batch",
        help="evaluate a JSON scenario list through the batch scheduler",
    )
    batch_parser.add_argument(
        "--file",
        required=True,
        help="JSON file with a list of scenario specs (or '-' for stdin); "
        "a {'scenarios': [...]} object is accepted too",
    )
    batch_parser.add_argument("--max-workers", type=int, default=None)
    batch_parser.add_argument("--shard-size", type=int, default=None)
    batch_parser.add_argument(
        "--cache-dir", default=None, help="optional on-disk cache directory"
    )
    batch_parser.add_argument(
        "--workers",
        action="append",
        default=None,
        metavar="URL[,URL...]",
        help="remote `repro serve` base URLs to dispatch shards to "
        "(repeatable, comma-separated values accepted)",
    )
    _add_cache_peer_flag(batch_parser)
    _add_worker_tuning_flags(batch_parser)
    batch_parser.add_argument(
        "--async",
        dest="async_mode",
        action="store_true",
        help="run the batch as a background job and poll its progress",
    )
    batch_parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        help="seconds between progress polls with --async",
    )
    batch_parser.add_argument(
        "--stream",
        action="store_true",
        help="print each result row the moment its shard finishes (one "
        "JSON line per row with --json), then the batch stats",
    )
    add_json_flag(batch_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="result-cache maintenance (see repro.service.cache)"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    gc_parser = cache_sub.add_parser(
        "gc",
        help="drop on-disk entries whose engine version no longer matches "
        "ENGINE_VERSION; --journal compacts a job journal the same way",
    )
    gc_parser.add_argument(
        "--cache-dir", default=None, help="on-disk cache directory to sweep"
    )
    gc_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="job journal to compact (drops jobs no current engine version "
        "can reproduce, then VACUUMs the file)",
    )
    gc_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be dropped without deleting anything",
    )
    add_json_flag(gc_parser)

    experiment_parser = subparsers.add_parser(
        "experiment",
        help="experiment grids (generators × strategies × metrics; "
        "see repro.experiment)",
    )
    experiment_sub = experiment_parser.add_subparsers(
        dest="experiment_command", required=True
    )
    run_parser = experiment_sub.add_parser(
        "run",
        help="compile a JSON experiment spec, evaluate it as one deduped "
        "batch and persist the artifact table",
    )
    run_parser.add_argument(
        "spec",
        help="JSON experiment spec file (or '-' for stdin) with "
        "{name, seed, generators, strategies, metrics}",
    )
    run_parser.add_argument(
        "--output-dir",
        default="experiments-out",
        help="artifact root; the table lands in <output-dir>/<name>-<hash12>/",
    )
    run_parser.add_argument("--max-workers", type=int, default=None)
    run_parser.add_argument("--shard-size", type=int, default=None)
    run_parser.add_argument(
        "--cache-dir", default=None, help="optional on-disk cache directory"
    )
    run_parser.add_argument(
        "--workers",
        action="append",
        default=None,
        metavar="URL[,URL...]",
        help="remote `repro serve` base URLs to dispatch shards to "
        "(repeatable, comma-separated values accepted)",
    )
    _add_cache_peer_flag(run_parser)
    _add_worker_tuning_flags(run_parser)
    run_parser.add_argument(
        "--stream",
        action="store_true",
        help="print table rows as their shards finish and write table.csv "
        "incrementally (final artifacts identical to a non-streamed run)",
    )
    add_json_flag(run_parser)

    top_parser = subparsers.add_parser(
        "top",
        help="live telemetry summary of a running `repro serve` node",
    )
    top_parser.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="base URL of the server to watch",
    )
    top_parser.add_argument(
        "--interval",
        type=_refresh_interval,
        default=2.0,
        metavar="SECONDS",
        help="seconds between refreshes (at least 0.1)",
    )
    top_parser.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit instead of refreshing",
    )
    top_parser.add_argument(
        "--json",
        action="store_true",
        help="emit one raw {metrics, workers} JSON snapshot and exit",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="fetch a job's trace span tree from a running server",
    )
    trace_parser.add_argument(
        "job_id", help="job id (or any trace id retained by the server)"
    )
    trace_parser.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="base URL of the server that ran the job",
    )
    trace_parser.add_argument(
        "--chrome",
        default=None,
        metavar="PATH",
        help="write Chrome trace_event JSON to PATH ('-' for stdout) "
        "instead of the text tree; load it in chrome://tracing or "
        "https://ui.perfetto.dev",
    )
    add_json_flag(trace_parser)
    return parser


def _refresh_interval(value: str) -> float:
    """Parse ``repro top --interval``, rejecting sub-clamp values loudly.

    The refresh loop used to clamp anything below 0.1 s silently — a user
    asking for ``--interval 0.01`` (or a negative value) got a 0.1 s loop
    with no hint their flag was ignored.  Reject it at parse time instead.
    """
    try:
        interval = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid interval {value!r}")
    if not interval >= 0.1:  # also rejects NaN
        raise argparse.ArgumentTypeError(
            f"refresh interval must be at least 0.1 seconds, got {value}"
        )
    return interval


def _add_cache_peer_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--cache-peers",
        action="append",
        default=None,
        metavar="URL[,URL...]",
        help="base URLs of other `repro serve` nodes whose GET /cache/<key> "
        "is consulted on a local cache miss before recomputing "
        "(repeatable, comma-separated values accepted)",
    )


def _add_worker_tuning_flags(subparser: argparse.ArgumentParser) -> None:
    """Shared ``--workers`` tuning knobs for ``serve`` and ``batch``."""
    subparser.add_argument(
        "--reprobe-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="re-probe dead workers in the background with exponential "
        "backoff starting at this interval (0 disables the supervisor)",
    )
    subparser.add_argument(
        "--worker-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="budget for reading one shard response from a worker",
    )
    subparser.add_argument(
        "--worker-connect-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="budget for dialing a worker (kept far below --worker-timeout "
        "so a vanished worker fails over in seconds)",
    )
    subparser.add_argument(
        "--no-wire",
        dest="worker_wire",
        action="store_false",
        help="pin shard dispatch to JSON instead of negotiating the binary "
        "wire with wire-capable workers (debugging aid; results are "
        "bit-identical either way)",
    )


def _build_worker_pool(args: argparse.Namespace):
    """Build a tuned RemoteWorkerPool from ``--workers`` (None without URLs)."""
    urls = _parse_worker_urls(args.workers)
    if not urls:
        return None
    from .service.remote import RemoteWorkerPool

    return RemoteWorkerPool(
        urls,
        timeout=args.worker_timeout,
        connect_timeout=args.worker_connect_timeout,
        wire=getattr(args, "worker_wire", True),
    )


def _parse_worker_urls(values) -> Optional[List[str]]:
    """Flatten repeated/comma-separated ``--workers`` values into URLs."""
    if not values:
        return None
    urls = [url.strip() for value in values for url in value.split(",")]
    return [url for url in urls if url] or None


def _print_spec_json(spec) -> int:
    """Evaluate ``spec`` and print the HTTP-service payload for it."""
    from .service.execute import execute_spec

    print(render_json(execute_spec(spec)))
    return 0


def _command_bounds(args: argparse.Namespace) -> int:
    if args.json:
        from .service.spec import BoundsSpec

        return _print_spec_json(
            BoundsSpec(
                num_rays=args.rays, num_robots=args.robots, num_faulty=args.faulty
            )
        )
    problem = ray_problem(args.rays, args.robots, args.faulty)
    ratio = crash_ray_ratio(args.rays, args.robots, args.faulty)
    print(problem.describe())
    print(f"tight competitive ratio: {format_value(ratio)}")
    if problem.regime.value == "interesting":
        alpha = optimal_geometric_base(args.rays, args.robots, args.faulty)
        print(f"optimal geometric base alpha*: {format_value(alpha, 6)}")
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    if args.json:
        from .service.spec import SimulateSpec

        return _print_spec_json(
            SimulateSpec(
                num_rays=args.rays,
                num_robots=args.robots,
                num_faulty=args.faulty,
                horizon=args.horizon,
            )
        )
    problem = ray_problem(args.rays, args.robots, args.faulty)
    strategy = optimal_strategy(problem)
    result = evaluate_strategy(strategy, args.horizon)
    rows = [
        ["strategy", strategy.name],
        ["horizon", format_value(args.horizon)],
        ["theoretical ratio", format_value(result.theoretical_ratio)],
        ["measured ratio", format_value(result.ratio)],
        ["worst target ray", result.worst_case.target.ray],
        ["worst target distance", format_value(result.worst_case.target.distance)],
        ["targets evaluated", result.num_targets_evaluated],
    ]
    print(problem.describe())
    print(render_table(["quantity", "value"], rows))
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    if args.only is not None:
        tables = [_EXPERIMENTS[args.only]()]
    else:
        tables = experiment_tables.all_experiments(fast=not args.full)
    if args.json:
        print(
            render_json(
                [
                    {
                        "experiment_id": table.experiment_id,
                        "title": table.title,
                        "headers": table.headers,
                        "rows": table.rows,
                    }
                    for table in tables
                ]
            )
        )
        return 0
    for table in tables:
        print(render_experiment(table))
        print()
    return 0


def _command_montecarlo(args: argparse.Namespace) -> int:
    if args.json:
        from .service.spec import MonteCarloFaultsSpec, MonteCarloRandomizedSpec

        if args.workload == "randomized":
            spec = MonteCarloRandomizedSpec(
                num_rays=args.rays,
                num_samples=args.trials,
                seed=args.seed,
                horizon=args.horizon,
                engine=args.engine,
            )
        else:
            spec = MonteCarloFaultsSpec(
                num_rays=args.rays,
                num_robots=args.robots,
                num_faulty=args.faulty,
                num_trials=args.trials,
                seed=args.seed,
                horizon=args.horizon,
                engine=args.engine,
            )
        return _print_spec_json(spec)
    if args.workload == "randomized":
        from .strategies.randomized import (
            RandomizedSingleRobotRayStrategy,
            monte_carlo_ratio_report,
        )

        from .service.spec import MonteCarloRandomizedSpec

        strategy = RandomizedSingleRobotRayStrategy(args.rays)
        # One definition of the default target pool: the spec's (so the
        # table path and the --json/HTTP path evaluate identical targets).
        targets = MonteCarloRandomizedSpec(
            num_rays=args.rays, horizon=args.horizon
        ).resolved_targets()
        report = monte_carlo_ratio_report(
            strategy,
            targets,
            num_samples=args.trials,
            seed=args.seed,
            horizon=args.horizon,
            engine=args.engine,
        )
        rows = [
            ["workload", "randomized offset search"],
            ["rays", args.rays],
            ["base", format_value(strategy.base, 6)],
            ["samples", report.num_samples],
            ["closed-form expected ratio", format_value(report.closed_form, 6)],
            ["monte-carlo estimate", format_value(report.estimate, 6)],
            ["std error", format_value(report.std_error, 6)],
            ["within 3 std errors", report.within_standard_errors()],
            ["engine", report.engine],
            ["seed", args.seed],
        ]
        print(render_table(["quantity", "value"], rows))
        return 0

    from .faults.injection import simulate_random_faults

    problem = ray_problem(args.rays, args.robots, args.faulty)
    strategy = optimal_strategy(problem)
    report = simulate_random_faults(
        strategy,
        args.horizon,
        num_trials=args.trials,
        seed=args.seed,
        engine=args.engine,
    )
    statistics = report.statistics
    rows = [
        ["workload", "random crash faults"],
        ["strategy", strategy.name],
        ["trials", statistics.num_trials],
        ["adversarial ratio", format_value(report.adversarial_ratio)],
        ["mean ratio", format_value(statistics.mean)],
        ["std error", format_value(statistics.std_error, 6)],
        ["median ratio", format_value(statistics.quantile(0.5))],
        ["95% quantile", format_value(statistics.quantile(0.95))],
        ["max ratio", format_value(statistics.maximum)],
        ["slack vs adversary", format_value(report.slack)],
        ["engine", report.engine],
        ["seed", args.seed],
    ]
    print(problem.describe())
    print(render_table(["quantity", "value"], rows))
    return 0


def _command_timeline(args: argparse.Namespace) -> int:
    if args.json:
        from .service.spec import TimelineSpec

        return _print_spec_json(
            TimelineSpec(
                num_rays=args.rays,
                num_robots=args.robots,
                num_faulty=args.faulty,
                target_ray=args.target_ray,
                target_distance=args.target_distance,
            )
        )
    problem = ray_problem(args.rays, args.robots, args.faulty)
    strategy = optimal_strategy(problem)
    horizon = max(args.target_distance * 4.0, 10.0)
    trajectories = strategy.trajectories(horizon)
    target = RayPoint(ray=args.target_ray, distance=args.target_distance)
    timeline = build_timeline(trajectories, target, problem)
    print(problem.describe())
    print(f"target: ray {target.ray}, distance {format_value(target.distance)}")
    print(timeline.render(limit=args.limit))
    print(f"detection time: {format_value(timeline.detection_time)}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .service.cache import ResultCache
    from .service.server import create_server, run_server

    cache = ResultCache(
        max_entries=args.cache_size,
        disk_path=args.cache_dir,
        peers=_parse_worker_urls(args.cache_peers),
    )
    server = create_server(
        host=args.host,
        port=args.port,
        cache=cache,
        verbose=args.verbose,
        workers=_parse_worker_urls(args.workers),
        reprobe_interval=args.reprobe_interval,
        worker_timeout=args.worker_timeout,
        worker_connect_timeout=args.worker_connect_timeout,
        worker_wire=getattr(args, "worker_wire", True),
        journal_path=args.journal,
    )
    if server.recovery is not None:
        # Stderr, so the banner below stays the first stdout line the
        # scripted smoke tests wait for.
        summary = ", ".join(
            f"{name}={count}" for name, count in sorted(server.recovery.items())
        )
        print(f"journal {args.journal}: {summary}", file=sys.stderr, flush=True)
    # The exact line scripted smoke tests wait for (port 0 binds ephemerally).
    print(f"serving on {server.url}", flush=True)
    run_server(server)
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    import json as _json

    from .service.cache import ResultCache
    from .service.scheduler import ScenarioScheduler
    from .service.spec import spec_from_dict

    try:
        if args.file == "-":
            body = _json.load(sys.stdin)
        else:
            with open(args.file, "r", encoding="utf-8") as handle:
                body = _json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot read scenarios from {args.file!r}: {error}",
              file=sys.stderr)
        return 2
    if isinstance(body, dict):
        body = body.get("scenarios")
    if not isinstance(body, list) or not body:
        print("error: expected a non-empty JSON list of scenario specs",
              file=sys.stderr)
        return 2
    pool = _build_worker_pool(args)
    try:
        specs = [spec_from_dict(item) for item in body]
        scheduler = ScenarioScheduler(
            cache=ResultCache(
                disk_path=args.cache_dir,
                peers=_parse_worker_urls(args.cache_peers),
            ),
            workers=pool,
        )
        if pool is not None and args.reprobe_interval > 0:
            # Long batches heal mid-run restarts: a worker that comes back
            # is re-probed by the supervisor and the dispatch loop admits
            # it a fresh dispatcher thread while shards remain queued.
            pool.start_supervisor(reprobe_interval=args.reprobe_interval)
        if args.stream:
            from .reporting import to_jsonable

            job = scheduler.submit_job(
                specs, max_workers=args.max_workers, shard_size=args.shard_size
            )
            for index, key, payload in job.iter_rows():
                if args.json:
                    print(
                        _json.dumps(
                            to_jsonable(
                                {"index": index, "key": key, "result": payload}
                            ),
                            sort_keys=True,
                            allow_nan=False,
                        ),
                        flush=True,
                    )
                else:
                    print(
                        f"row {index + 1}/{len(specs)} "
                        f"kind {specs[index].kind} key {key[:12]}",
                        flush=True,
                    )
            batch = job.result()
        elif args.async_mode:
            job = scheduler.submit_job(
                specs, max_workers=args.max_workers, shard_size=args.shard_size
            )
            print(f"job {job.job_id} submitted ({len(specs)} scenarios)",
                  file=sys.stderr)
            while not job.wait(timeout=max(0.01, args.poll_interval)):
                # ``total`` is the unique-scenario count once dedup has
                # run; until then BatchJob.to_dict reports the submitted
                # count, so the poll line is well-formed from the first
                # tick.
                snapshot = job.to_dict(include_results=False)["progress"]
                print(
                    f"job {job.job_id}: {snapshot['completed']}/"
                    f"{snapshot['total']} unique scenarios",
                    file=sys.stderr,
                )
            batch = job.result()
        else:
            batch = scheduler.run_batch(
                specs, max_workers=args.max_workers, shard_size=args.shard_size
            )
    except ReproError as error:
        print(f"error: invalid scenario or batch parameters: {error}",
              file=sys.stderr)
        return 2
    finally:
        if pool is not None:
            pool.close()
    if args.json:
        if args.stream:
            # Rows already went out as NDJSON lines; finish with one
            # compact summary line instead of repeating the result list.
            from .reporting import to_jsonable

            print(
                _json.dumps(
                    to_jsonable(
                        {
                            "stats": batch.to_dict(),
                            "cache": scheduler.cache.stats().to_dict(),
                        }
                    ),
                    sort_keys=True,
                    allow_nan=False,
                )
            )
            return 0
        print(
            render_json(
                {
                    "results": list(batch.results),
                    "stats": batch.to_dict(),
                    "cache": scheduler.cache.stats().to_dict(),
                }
            )
        )
        return 0
    stats = batch.to_dict()
    stats.update(cache_hit_rate=scheduler.cache.stats().hit_rate)
    print(render_table(["quantity", "value"], sorted(stats.items())))
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    from .service.cache import gc_disk_cache
    from .service.journal import gc_journal
    from .service.spec import ENGINE_VERSION

    # The subparser is required=True, so cache_command is always "gc" here;
    # the dispatch keeps room for future maintenance commands.
    if args.cache_dir is None and args.journal is None:
        print("error: nothing to sweep — pass --cache-dir and/or --journal",
              file=sys.stderr)
        return 2
    payload = {"engine_version": ENGINE_VERSION}
    if args.cache_dir is not None:
        report = gc_disk_cache(args.cache_dir, dry_run=args.dry_run)
        payload.update(report.to_dict())
        payload["cache_dir"] = args.cache_dir
    if args.journal is not None:
        journal_report = gc_journal(args.journal, dry_run=args.dry_run)
        payload["journal"] = dict(journal_report.to_dict(), path=args.journal)
    if args.json:
        print(render_json(payload))
        return 0
    rows = sorted(
        (name, value) for name, value in payload.items() if name != "journal"
    )
    if "journal" in payload:
        rows.extend(
            (f"journal {name}", value)
            for name, value in sorted(payload["journal"].items())
        )
    print(render_table(["quantity", "value"], rows))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    import json as _json

    from .experiment import Experiment
    from .service.cache import ResultCache
    from .service.scheduler import ScenarioScheduler

    # experiment_command is required=True and currently only "run"; the
    # dispatch keeps room for future subcommands (diff, render, ...).
    try:
        if args.spec == "-":
            body = _json.load(sys.stdin)
        else:
            with open(args.spec, "r", encoding="utf-8") as handle:
                body = _json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot read experiment spec from {args.spec!r}: {error}",
              file=sys.stderr)
        return 2
    pool = _build_worker_pool(args)
    try:
        plan = Experiment.from_spec(body).compile()
        scheduler = ScenarioScheduler(
            cache=ResultCache(
                disk_path=args.cache_dir,
                peers=_parse_worker_urls(args.cache_peers),
            ),
            workers=pool,
        )
        if pool is not None and args.reprobe_interval > 0:
            pool.start_supervisor(reprobe_interval=args.reprobe_interval)
        if args.stream:
            import os as _os

            from .experiment import CsvRowStream
            from .reporting import to_jsonable

            directory = plan.artifact_directory(args.output_dir)
            _os.makedirs(directory, exist_ok=True)
            csv_path = _os.path.join(directory, "table.csv")

            def on_row(row):
                stream.write(row)
                if args.json:
                    print(
                        _json.dumps(
                            {"row": to_jsonable(row)},
                            sort_keys=True,
                            allow_nan=False,
                        ),
                        flush=True,
                    )
                else:
                    print(
                        f"cell {row[0] + 1}/{len(plan.cells)} "
                        f"{row[1]} × {row[2]} ({row[3]})",
                        flush=True,
                    )

            with CsvRowStream(csv_path, plan.columns) as stream:
                result = plan.run(
                    scheduler=scheduler,
                    max_workers=args.max_workers,
                    shard_size=args.shard_size,
                    on_row=on_row,
                )
        else:
            result = plan.run(
                scheduler=scheduler,
                max_workers=args.max_workers,
                shard_size=args.shard_size,
            )
    except ReproError as error:
        print(f"error: invalid experiment spec: {error}", file=sys.stderr)
        return 2
    finally:
        if pool is not None:
            pool.close()
    # persist() rewrites table.csv with the same bytes a streamed run
    # already wrote incrementally, plus table.json.
    paths = result.persist(args.output_dir)
    if args.json:
        if args.stream:
            from .reporting import to_jsonable

            summary = {
                key: value
                for key, value in result.to_dict().items()
                if key != "rows"
            }
            print(
                _json.dumps(
                    to_jsonable(dict(summary, artifacts=paths)),
                    sort_keys=True,
                    allow_nan=False,
                )
            )
            return 0
        print(render_json(dict(result.to_dict(), artifacts=paths)))
        return 0
    print(f"experiment {plan.name} ({len(plan.cells)} cells, "
          f"hash {plan.content_hash()[:12]})")
    if not args.stream:
        print(render_table(result.plan.columns, result.rows))
    stats = dict(result.stats)
    stats.update(cache_hit_rate=scheduler.cache.stats().hit_rate)
    print(render_table(["quantity", "value"], sorted(stats.items())))
    print(f"artifacts: {paths['directory']}")
    return 0


def _http_get_json(url: str, timeout: float = 10.0):
    """GET ``url`` and decode the JSON body (stdlib only, like the service)."""
    import json as _json
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout) as response:
        return _json.loads(response.read().decode("utf-8"))


def _series_label(entry: dict) -> str:
    """``name{k=v,...}`` display label for one metrics-snapshot series."""
    name = str(entry.get("name", "?"))
    labels = entry.get("labels") or {}
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def _scenario_count(snapshot: dict) -> Optional[float]:
    """Sum of ``repro_scenarios_total`` across its label sets, if present."""
    entries = snapshot.get("counters")
    if not isinstance(entries, list):
        return None
    total = None
    for entry in entries:
        if isinstance(entry, dict) and entry.get("name") == "repro_scenarios_total":
            value = entry.get("value")
            if isinstance(value, (int, float)):
                total = (total or 0.0) + value
    return total


def render_top(
    snapshot: dict,
    workers: Optional[dict] = None,
    previous: Optional[dict] = None,
    elapsed: Optional[float] = None,
) -> str:
    """Render one ``repro top`` frame from a ``GET /metrics.json`` payload.

    Pure (no I/O), so tests can feed it canned snapshots.  ``workers`` is
    the optional ``GET /workers`` payload a coordinator serves; worker-only
    nodes pass ``None`` and just get the counter/latency tables.

    ``previous``/``elapsed`` (the prior frame's snapshot and the seconds
    between scrapes) add a scenarios-per-second throughput line from the
    ``repro_scenarios_total`` delta.  Guarded against a zero-elapsed
    refresh and a counter that moved backwards (server restart): either
    way the line is simply omitted rather than printing ``inf`` or a
    negative rate.
    """
    from .service import telemetry

    lines = []
    since = snapshot.get("since")
    header = "repro top"
    if isinstance(since, (int, float)) and since > 0:
        import time as _time

        header += f" — server up {max(0.0, _time.time() - since):.0f}s"
    if previous is not None and elapsed is not None and elapsed > 0:
        now_total = _scenario_count(snapshot)
        prev_total = _scenario_count(previous)
        if now_total is not None and prev_total is not None:
            delta = now_total - prev_total
            if delta >= 0:
                header += (
                    f" — {delta / elapsed:.1f} scenarios/s over {elapsed:.1f}s"
                )
    lines.append(header)

    scalar_rows = []
    for kind in ("counters", "gauges"):
        entries = snapshot.get(kind)
        if not isinstance(entries, list):
            continue
        for entry in entries:
            if isinstance(entry, dict):
                scalar_rows.append(
                    [_series_label(entry), format_value(entry.get("value", 0))]
                )
    if scalar_rows:
        lines.append("")
        lines.append(render_table(["series", "value"], sorted(scalar_rows)))

    histogram_rows = []
    entries = snapshot.get("histograms")
    if isinstance(entries, list):
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            summary = telemetry.summarize_histogram(entry)
            histogram_rows.append(
                [
                    _series_label(entry),
                    summary["count"],
                    format_value(summary["p50_seconds"], 6),
                    format_value(summary["p95_seconds"], 6),
                    format_value(summary["p99_seconds"], 6),
                ]
            )
    if histogram_rows:
        lines.append("")
        lines.append(
            render_table(
                ["latency", "count", "p50 (s)", "p95 (s)", "p99 (s)"],
                sorted(histogram_rows),
            )
        )

    if isinstance(workers, dict):
        entries = workers.get("workers")
        worker_rows = [
            [
                entry.get("url"),
                "up" if entry.get("alive") else "DOWN",
                entry.get("shards_completed", 0),
                format_value(entry.get("p50_seconds", 0.0), 6),
                format_value(entry.get("p95_seconds", 0.0), 6),
                "STRAGGLER" if entry.get("straggler") else "",
            ]
            for entry in entries or []
            if isinstance(entry, dict)
        ]
        if worker_rows:
            lines.append("")
            lines.append(
                f"workers: {workers.get('num_live', 0)}/"
                f"{workers.get('num_workers', 0)} live, "
                f"queue depth {workers.get('queue_depth', 0)}, "
                f"failovers {workers.get('failovers', 0)}"
            )
            lines.append(
                render_table(
                    ["worker", "state", "shards", "p50 (s)", "p95 (s)", ""],
                    worker_rows,
                )
            )
    return "\n".join(lines)


def _command_top(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")

    def fetch():
        snapshot = _http_get_json(f"{base}/metrics.json")
        try:
            workers = _http_get_json(f"{base}/workers")
        except (OSError, ValueError):
            workers = None  # worker-only node: /workers is a 404
        return snapshot, workers

    try:
        snapshot, workers = fetch()
    except (OSError, ValueError) as error:
        print(f"error: cannot scrape {base}: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(render_json({"metrics": snapshot, "workers": workers}))
        return 0
    print(render_top(snapshot, workers))
    if args.once:
        return 0
    import time as _time

    # args.interval is validated at parse time (>= 0.1), so the loop
    # sleeps exactly what was asked instead of silently clamping.
    previous, previous_at = snapshot, _time.monotonic()
    try:
        while True:
            _time.sleep(args.interval)
            try:
                snapshot, workers = fetch()
            except (OSError, ValueError) as error:
                print(f"(scrape failed, retrying: {error})", file=sys.stderr)
                continue
            now = _time.monotonic()
            # Clear + home, like watch(1), so the frame repaints in place.
            print("\x1b[2J\x1b[H", end="")
            print(
                render_top(
                    snapshot, workers, previous=previous, elapsed=now - previous_at
                ),
                flush=True,
            )
            previous, previous_at = snapshot, now
    except KeyboardInterrupt:
        return 0


def _command_trace(args: argparse.Namespace) -> int:
    from .service.telemetry import render_span_tree

    base = args.url.rstrip("/")
    try:
        if args.chrome is not None:
            payload = _http_get_json(f"{base}/trace/{args.job_id}/chrome")
            text = render_json(payload)
            if args.chrome == "-":
                print(text)
            else:
                with open(args.chrome, "w", encoding="utf-8") as handle:
                    handle.write(text + "\n")
                print(
                    f"wrote {len(payload.get('traceEvents', []))} trace "
                    f"events to {args.chrome} (open in chrome://tracing "
                    "or https://ui.perfetto.dev)",
                    file=sys.stderr,
                )
            return 0
        tree = _http_get_json(f"{base}/trace/{args.job_id}")
    except (OSError, ValueError) as error:
        print(
            f"error: cannot fetch trace {args.job_id!r} from {base}: {error}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(render_json(tree))
        return 0
    print(render_span_tree(tree))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "bounds": _command_bounds,
        "simulate": _command_simulate,
        "experiments": _command_experiments,
        "montecarlo": _command_montecarlo,
        "timeline": _command_timeline,
        "serve": _command_serve,
        "batch": _command_batch,
        "cache": _command_cache,
        "experiment": _command_experiment,
        "top": _command_top,
        "trace": _command_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

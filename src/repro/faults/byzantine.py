"""Byzantine-fault specifics: prior bounds and the paper's improvements.

The paper's contribution for Byzantine faults is indirect but substantial:
because a Byzantine adversary can always emulate a crash adversary, every
crash lower bound of Theorem 1 transfers verbatim, and for several small
parameter pairs this beats the previously published Byzantine bounds.  The
headline example quoted in the paper is

    ``B(3, 1) >= (8/3) * 4^(1/3) + 1 ≈ 5.23``   (previously 3.93).

This module packages the comparison so the E3 bench and EXPERIMENTS.md can
report it mechanically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.bounds import byzantine_lower_bound, known_byzantine_bounds_isaac2016
from ..exceptions import InvalidProblemError

__all__ = [
    "ByzantineBoundComparison",
    "headline_improvement",
    "improvement_table",
]


@dataclass(frozen=True)
class ByzantineBoundComparison:
    """One row of the Byzantine lower-bound comparison.

    Attributes
    ----------
    k, f:
        Robot and fault counts.
    new_bound:
        The bound implied by Theorem 1 (crash transfer).
    previous_bound:
        The best previously published bound, when the paper quotes one.
    improvement:
        ``new_bound - previous_bound`` (``None`` when no prior bound is
        known).
    """

    k: int
    f: int
    new_bound: float
    previous_bound: Optional[float]
    improvement: Optional[float]


def headline_improvement() -> ByzantineBoundComparison:
    """The paper's headline example: ``B(3, 1)`` improves from 3.93 to ≈5.23."""
    previous = known_byzantine_bounds_isaac2016()[(3, 1)]
    new = byzantine_lower_bound(3, 1)
    return ByzantineBoundComparison(
        k=3, f=1, new_bound=new, previous_bound=previous, improvement=new - previous
    )


def improvement_table(pairs: Optional[List[Tuple[int, int]]] = None) -> List[ByzantineBoundComparison]:
    """Byzantine lower bounds implied by Theorem 1 for a list of ``(k, f)`` pairs.

    The default list covers the small interesting-regime pairs
    (``f < k < 2 (f + 1)``) with up to nine robots.  Pairs outside the
    interesting regime are rejected because Theorem 1 does not bound them.
    """
    if pairs is None:
        pairs = [
            (k, f)
            for f in range(1, 5)
            for k in range(f + 1, 2 * (f + 1))
        ]
    known = known_byzantine_bounds_isaac2016()
    rows: List[ByzantineBoundComparison] = []
    for k, f in pairs:
        if not (f < k < 2 * (f + 1)):
            raise InvalidProblemError(
                f"pair (k={k}, f={f}) is outside the interesting regime of Theorem 1"
            )
        new = byzantine_lower_bound(k, f)
        previous = known.get((k, f))
        rows.append(
            ByzantineBoundComparison(
                k=k,
                f=f,
                new_bound=new,
                previous_bound=previous,
                improvement=None if previous is None else new - previous,
            )
        )
    return rows

"""Fault models: crash-type and Byzantine-type robots.

The paper distinguishes two adversarial fault models:

* **crash** (Czyzowitz, Kranakis, Krizanc, Narayanan, Opatrny, PODC 2016) —
  a faulty robot moves exactly as instructed but never reports the target;
* **Byzantine** (Czyzowitz, Georgiou, Kranakis, Krizanc, Narayanan,
  Opatrny, Shende, ISAAC 2016) — a faulty robot may stay silent *and* may
  claim a target where there is none.

For the purposes of this library a fault model answers one question: given
the multiset of (time-stamped) robot visits at a candidate point, when can
the non-faulty robots be *certain* the target is there?

* Under crash faults certainty requires ``f + 1`` distinct visitors: the
  adversary silences the first ``f``, and the ``(f+1)``-th visitor is
  guaranteed non-faulty-or-irrelevant (some visitor among the first
  ``f + 1`` is non-faulty and reports).
* Under Byzantine faults a *report* is only trustworthy once it cannot have
  been fabricated; the simple sufficient rule implemented here (and used by
  the algorithms in the literature) is corroboration by ``f + 1`` distinct
  reporters, which also takes the ``(f + 1)``-th distinct visit.  The
  paper only proves *lower* bounds for this model — every crash lower bound
  applies — so the library treats the Byzantine confirmation time as
  "at least the crash confirmation time" and exposes the transfer
  explicitly.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Sequence

from ..core.problem import FaultType, SearchProblem
from ..exceptions import InvalidProblemError
from ..geometry.visits import Visit

__all__ = [
    "FaultModel",
    "NoFaultModel",
    "CrashFaultModel",
    "ByzantineFaultModel",
    "fault_model_for",
]


class FaultModel(abc.ABC):
    """Abstract fault model: maps visit order statistics to confirmation time."""

    #: The :class:`~repro.core.problem.FaultType` this model implements.
    fault_type: FaultType

    #: True when :meth:`confirmation_time` is exactly the
    #: ``required_visits``-th smallest arrival time.  The vectorized engine
    #: (:mod:`repro.simulation.engine`) relies on this to batch confirmation
    #: times with ``np.partition``; models with a different rule keep the
    #: default False and are evaluated by the scalar reference path.
    is_order_statistic: bool = False

    def __init__(self, num_robots: int, num_faulty: int) -> None:
        if num_faulty < 0 or num_faulty > num_robots:
            raise InvalidProblemError(
                f"invalid fault count {num_faulty} for {num_robots} robots"
            )
        self.num_robots = num_robots
        self.num_faulty = num_faulty

    @property
    def required_visits(self) -> int:
        """Distinct visits needed before the target can be confirmed."""
        return self.num_faulty + 1

    @abc.abstractmethod
    def confirmation_time(self, visits: Sequence[Visit]) -> float:
        """Worst-case time at which the target is confirmed.

        ``visits`` is the time-sorted list of first arrivals of distinct
        robots at the target point (see
        :func:`repro.geometry.visits.first_visits`).  Returns ``math.inf``
        when the adversary can prevent confirmation forever.
        """

    def adversarial_fault_set(self, visits: Sequence[Visit]) -> list:
        """The fault assignment the adversary uses against these visits.

        For both models the worst choice is to corrupt the earliest
        ``min(f, len(visits))`` visitors, delaying the first trustworthy
        report as long as possible.
        """
        return [visit.robot for visit in visits[: self.num_faulty]]


class NoFaultModel(FaultModel):
    """All robots are reliable: the first visit confirms the target."""

    fault_type = FaultType.NONE
    is_order_statistic = True

    def __init__(self, num_robots: int) -> None:
        super().__init__(num_robots, 0)

    def confirmation_time(self, visits: Sequence[Visit]) -> float:
        if not visits:
            return math.inf
        return visits[0].time


class CrashFaultModel(FaultModel):
    """Crash faults: confirmation at the ``(f + 1)``-th distinct visit."""

    fault_type = FaultType.CRASH
    is_order_statistic = True

    def confirmation_time(self, visits: Sequence[Visit]) -> float:
        if len(visits) < self.required_visits:
            return math.inf
        return visits[self.required_visits - 1].time


class ByzantineFaultModel(FaultModel):
    """Byzantine faults: lower-bounded by the crash confirmation time.

    The library uses the (f + 1)-corroboration rule as the confirmation
    criterion, which makes the Byzantine confirmation time equal to the
    crash one for a fixed trajectory set.  What changes in the Byzantine
    model is the *lower bound side*: the adversary has strictly more power
    (it can also inject false reports elsewhere), so the paper's crash
    bounds are valid but possibly not tight here.  The
    ``is_lower_bound_only`` flag lets reporting code annotate this.
    """

    fault_type = FaultType.BYZANTINE
    is_order_statistic = True
    is_lower_bound_only = True

    def confirmation_time(self, visits: Sequence[Visit]) -> float:
        if len(visits) < self.required_visits:
            return math.inf
        return visits[self.required_visits - 1].time


def fault_model_for(problem: SearchProblem) -> FaultModel:
    """Build the fault model matching a :class:`SearchProblem`."""
    if problem.num_faulty == 0:
        return NoFaultModel(problem.num_robots)
    if problem.fault_type is FaultType.CRASH:
        return CrashFaultModel(problem.num_robots, problem.num_faulty)
    if problem.fault_type is FaultType.BYZANTINE:
        return ByzantineFaultModel(problem.num_robots, problem.num_faulty)
    raise InvalidProblemError(
        f"no fault model for fault type {problem.fault_type!r}"
    )

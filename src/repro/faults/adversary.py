"""The adversary: worst-case target placement and fault assignment.

The competitive ratio is a game against an adversary that (a) places the
target anywhere at distance at least 1 from the origin and (b) chooses which
``f`` robots are faulty — both *after* seeing the strategy.  This module
implements that adversary exactly:

* For a fixed target point, the worst fault assignment silences the first
  ``f`` distinct visitors (:meth:`FaultModel.adversarial_fault_set`).
* Over target positions, the detection-time-to-distance ratio on a fixed
  ray is a piecewise function of the form ``(c + x) / x`` between
  *breakpoints* (the radii at which some robot's first-arrival time jumps),
  so the supremum is attained in the right-limit at a breakpoint.  The
  adversary therefore only needs to consider finitely many candidate
  targets; :func:`candidate_targets` enumerates them.

The enumeration is shared by two evaluation engines: the scalar per-target
reference loop and the batched NumPy engine of
:mod:`repro.simulation.engine` (the default).  Both see exactly the same
candidate set, so their results agree to floating-point noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..core.problem import SearchProblem
from ..exceptions import InvalidProblemError
from ..geometry.rays import RayPoint
from ..geometry.trajectory import Trajectory
from ..geometry.visits import Visit, first_visits
from .models import FaultModel, fault_model_for

__all__ = [
    "AdversaryChoice",
    "Adversary",
    "candidate_distances",
    "candidate_targets",
]

#: Default multiplicative nudge applied past each breakpoint: the supremum
#: over a piece ``(a, b]`` of ``(c+x)/x`` is approached as ``x -> a+``, so we
#: evaluate at ``a * (1 + BREAKPOINT_NUDGE)``.
BREAKPOINT_NUDGE = 1e-9

#: Relative tolerance under which two candidate distances are considered the
#: same target.  When several robots sweep (numerically almost) the same
#: radius — e.g. the same power of alpha accumulated in different orders —
#: their breakpoints differ only in the last few ulps; evaluating each copy
#: multiplies the target count without changing the supremum.  The tolerance
#: is kept three orders of magnitude below :data:`BREAKPOINT_NUDGE` so
#: genuinely distinct nudged breakpoints are never merged.
DEDUP_TOLERANCE = 1e-12


def candidate_distances(
    trajectories: Sequence[Trajectory],
    ray: int,
    min_distance: float = 1.0,
    horizon: Optional[float] = None,
    nudge: float = BREAKPOINT_NUDGE,
    dedup_tolerance: float = DEDUP_TOLERANCE,
) -> List[float]:
    """Sorted candidate target distances on one ray.

    The candidates are the minimum admissible distance itself plus every
    breakpoint of every robot's first-arrival-time function on ``ray``,
    nudged infinitesimally to the right and clipped to
    ``[min_distance, horizon]``.  Near-identical values (within a relative
    ``dedup_tolerance``) are merged, keeping the smallest representative.
    """
    if min_distance <= 0:
        raise InvalidProblemError(f"min_distance must be positive, got {min_distance}")
    distances = {min_distance}
    for trajectory in trajectories:
        for breakpoint in trajectory.arrival_breakpoints(ray, minimum=min_distance):
            nudged = breakpoint * (1.0 + nudge)
            if nudged < min_distance:
                continue
            if horizon is not None and nudged > horizon:
                continue
            distances.add(nudged)
    ordered = sorted(distances)
    deduped = [ordered[0]]
    for distance in ordered[1:]:
        # Purely relative: distances are >= min_distance > 0, and an absolute
        # floor would swallow genuinely distinct nudged breakpoints below 1.
        if distance - deduped[-1] > dedup_tolerance * deduped[-1]:
            deduped.append(distance)
    return deduped


def candidate_targets(
    trajectories: Sequence[Trajectory],
    num_rays: int,
    min_distance: float = 1.0,
    horizon: Optional[float] = None,
    nudge: float = BREAKPOINT_NUDGE,
    dedup_tolerance: float = DEDUP_TOLERANCE,
) -> List[RayPoint]:
    """Enumerate the target positions at which the worst ratio can occur.

    Between consecutive candidates the detection time has the form
    ``c + x`` with constant ``c``, hence the ratio ``(c + x)/x`` is
    decreasing and the listed points dominate.  See
    :func:`candidate_distances` for the per-ray enumeration.
    """
    targets: List[RayPoint] = []
    for ray in range(num_rays):
        for distance in candidate_distances(
            trajectories,
            ray,
            min_distance=min_distance,
            horizon=horizon,
            nudge=nudge,
            dedup_tolerance=dedup_tolerance,
        ):
            targets.append(RayPoint(ray=ray, distance=distance))
    return targets


@dataclass(frozen=True)
class AdversaryChoice:
    """The adversary's best response to a set of trajectories.

    Attributes
    ----------
    target:
        Worst-case target location.
    faulty_robots:
        Robots the adversary makes faulty (the earliest visitors).
    detection_time:
        Time at which the target is nevertheless confirmed
        (``math.inf`` when it never is).
    ratio:
        ``detection_time / target.distance`` — the competitive ratio this
        choice forces.
    num_targets:
        Number of candidate targets the adversary inspected to arrive at
        this choice (0 for single-target evaluations via ``response_at``).
    """

    target: RayPoint
    faulty_robots: tuple
    detection_time: float
    ratio: float
    num_targets: int = 0


class Adversary:
    """Adversary for a given :class:`SearchProblem`.

    The adversary evaluates a concrete set of trajectories and returns the
    choice (target position + fault assignment) that maximises the
    detection-time-to-distance ratio.
    """

    def __init__(self, problem: SearchProblem, fault_model: Optional[FaultModel] = None) -> None:
        self.problem = problem
        self.fault_model = fault_model if fault_model is not None else fault_model_for(problem)

    def response_at(
        self, trajectories: Sequence[Trajectory], target: RayPoint
    ) -> AdversaryChoice:
        """The adversary's best response when the target is pinned at ``target``."""
        visits = first_visits(trajectories, target)
        detection_time = self.fault_model.confirmation_time(visits)
        faulty = tuple(self.fault_model.adversarial_fault_set(visits))
        ratio = (
            detection_time / target.distance
            if target.distance > 0
            else math.inf
        )
        return AdversaryChoice(
            target=target,
            faulty_robots=faulty,
            detection_time=detection_time,
            ratio=ratio,
        )

    def best_response(
        self,
        trajectories: Sequence[Trajectory],
        horizon: float,
        extra_targets: Sequence[RayPoint] = (),
        engine: Optional[str] = None,
    ) -> AdversaryChoice:
        """The adversary's best choice over all candidate targets up to ``horizon``.

        ``extra_targets`` lets callers add hand-picked positions (e.g. a
        uniform verification grid) on top of the exact breakpoint
        candidates.  ``engine`` selects the evaluation engine
        (``"vectorized"``, the default, or the ``"scalar"`` reference
        oracle); fault models without order-statistic confirmation always
        use the scalar path.
        """
        from ..simulation.engine import (
            DEFAULT_ENGINE,
            VECTORIZED_ENGINE,
            supports_vectorized,
            validate_engine,
        )

        engine = validate_engine(engine if engine is not None else DEFAULT_ENGINE)
        if engine == VECTORIZED_ENGINE and supports_vectorized(self.fault_model):
            return self._best_response_vectorized(trajectories, horizon, extra_targets)
        return self._best_response_scalar(trajectories, horizon, extra_targets)

    # ------------------------------------------------------------------
    def _candidates_by_ray(
        self, trajectories: Sequence[Trajectory], horizon: float
    ) -> Dict[int, List[float]]:
        return {
            ray: candidate_distances(
                trajectories,
                ray,
                min_distance=self.problem.min_target_distance,
                horizon=horizon,
            )
            for ray in range(self.problem.num_rays)
        }

    def _best_response_scalar(
        self,
        trajectories: Sequence[Trajectory],
        horizon: float,
        extra_targets: Sequence[RayPoint],
    ) -> AdversaryChoice:
        candidates = candidate_targets(
            trajectories,
            num_rays=self.problem.num_rays,
            min_distance=self.problem.min_target_distance,
            horizon=horizon,
        )
        candidates = list(candidates) + list(extra_targets)
        if not candidates:
            raise InvalidProblemError("no candidate targets to evaluate")
        best: Optional[AdversaryChoice] = None
        for target in candidates:
            if target.distance > horizon:
                continue
            choice = self.response_at(trajectories, target)
            if best is None or choice.ratio > best.ratio:
                best = choice
        assert best is not None  # candidates is non-empty and contains min_distance
        return replace(best, num_targets=len(candidates))

    def _best_response_vectorized(
        self,
        trajectories: Sequence[Trajectory],
        horizon: float,
        extra_targets: Sequence[RayPoint],
    ) -> AdversaryChoice:
        from ..simulation.engine import best_candidate

        candidates = self._candidates_by_ray(trajectories, horizon)
        num_targets = sum(len(d) for d in candidates.values()) + len(extra_targets)
        best = best_candidate(trajectories, self.fault_model, candidates)
        if extra_targets:
            extras: Dict[int, List[float]] = {}
            for target in extra_targets:
                if target.distance > horizon:
                    continue
                extras.setdefault(target.ray, []).append(target.distance)
            extra_best = best_candidate(trajectories, self.fault_model, extras)
            if extra_best is not None and (best is None or extra_best.ratio > best.ratio):
                best = extra_best
        if best is None:
            raise InvalidProblemError("no candidate targets to evaluate")
        choice = self.response_at(
            trajectories, RayPoint(ray=best.ray, distance=best.distance)
        )
        return replace(choice, num_targets=num_targets)

"""The adversary: worst-case target placement and fault assignment.

The competitive ratio is a game against an adversary that (a) places the
target anywhere at distance at least 1 from the origin and (b) chooses which
``f`` robots are faulty — both *after* seeing the strategy.  This module
implements that adversary exactly:

* For a fixed target point, the worst fault assignment silences the first
  ``f`` distinct visitors (:meth:`FaultModel.adversarial_fault_set`).
* Over target positions, the detection-time-to-distance ratio on a fixed
  ray is a piecewise function of the form ``(c + x) / x`` between
  *breakpoints* (the radii at which some robot's first-arrival time jumps),
  so the supremum is attained in the right-limit at a breakpoint.  The
  adversary therefore only needs to consider finitely many candidate
  targets; :func:`candidate_targets` enumerates them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.problem import SearchProblem
from ..exceptions import InvalidProblemError
from ..geometry.rays import RayPoint
from ..geometry.trajectory import Trajectory
from ..geometry.visits import Visit, first_visits
from .models import FaultModel, fault_model_for

__all__ = ["AdversaryChoice", "Adversary", "candidate_targets"]

#: Default multiplicative nudge applied past each breakpoint: the supremum
#: over a piece ``(a, b]`` of ``(c+x)/x`` is approached as ``x -> a+``, so we
#: evaluate at ``a * (1 + BREAKPOINT_NUDGE)``.
BREAKPOINT_NUDGE = 1e-9


def candidate_targets(
    trajectories: Sequence[Trajectory],
    num_rays: int,
    min_distance: float = 1.0,
    horizon: Optional[float] = None,
    nudge: float = BREAKPOINT_NUDGE,
) -> List[RayPoint]:
    """Enumerate the target positions at which the worst ratio can occur.

    For every ray the candidates are:

    * the minimum admissible distance itself, and
    * every breakpoint of every robot's first-arrival-time function on that
      ray, nudged infinitesimally to the right (strictly beyond the radius
      already swept), clipped to ``[min_distance, horizon]``.

    Between consecutive candidates the detection time has the form
    ``c + x`` with constant ``c``, hence the ratio ``(c + x)/x`` is
    decreasing and the listed points dominate.
    """
    if min_distance <= 0:
        raise InvalidProblemError(f"min_distance must be positive, got {min_distance}")
    targets: List[RayPoint] = []
    for ray in range(num_rays):
        distances = {min_distance}
        for trajectory in trajectories:
            for breakpoint in trajectory.arrival_breakpoints(ray, minimum=min_distance):
                nudged = breakpoint * (1.0 + nudge)
                if nudged < min_distance:
                    continue
                if horizon is not None and nudged > horizon:
                    continue
                distances.add(nudged)
        for distance in sorted(distances):
            targets.append(RayPoint(ray=ray, distance=distance))
    return targets


@dataclass(frozen=True)
class AdversaryChoice:
    """The adversary's best response to a set of trajectories.

    Attributes
    ----------
    target:
        Worst-case target location.
    faulty_robots:
        Robots the adversary makes faulty (the earliest visitors).
    detection_time:
        Time at which the target is nevertheless confirmed
        (``math.inf`` when it never is).
    ratio:
        ``detection_time / target.distance`` — the competitive ratio this
        choice forces.
    """

    target: RayPoint
    faulty_robots: tuple
    detection_time: float
    ratio: float


class Adversary:
    """Adversary for a given :class:`SearchProblem`.

    The adversary evaluates a concrete set of trajectories and returns the
    choice (target position + fault assignment) that maximises the
    detection-time-to-distance ratio.
    """

    def __init__(self, problem: SearchProblem, fault_model: Optional[FaultModel] = None) -> None:
        self.problem = problem
        self.fault_model = fault_model if fault_model is not None else fault_model_for(problem)

    def response_at(
        self, trajectories: Sequence[Trajectory], target: RayPoint
    ) -> AdversaryChoice:
        """The adversary's best response when the target is pinned at ``target``."""
        visits = first_visits(trajectories, target)
        detection_time = self.fault_model.confirmation_time(visits)
        faulty = tuple(self.fault_model.adversarial_fault_set(visits))
        ratio = (
            detection_time / target.distance
            if target.distance > 0
            else math.inf
        )
        return AdversaryChoice(
            target=target,
            faulty_robots=faulty,
            detection_time=detection_time,
            ratio=ratio,
        )

    def best_response(
        self,
        trajectories: Sequence[Trajectory],
        horizon: float,
        extra_targets: Sequence[RayPoint] = (),
    ) -> AdversaryChoice:
        """The adversary's best choice over all candidate targets up to ``horizon``.

        ``extra_targets`` lets callers add hand-picked positions (e.g. a
        uniform verification grid) on top of the exact breakpoint
        candidates.
        """
        candidates = candidate_targets(
            trajectories,
            num_rays=self.problem.num_rays,
            min_distance=self.problem.min_target_distance,
            horizon=horizon,
        )
        candidates = list(candidates) + list(extra_targets)
        if not candidates:
            raise InvalidProblemError("no candidate targets to evaluate")
        best: Optional[AdversaryChoice] = None
        for target in candidates:
            if target.distance > horizon:
                continue
            choice = self.response_at(trajectories, target)
            if best is None or choice.ratio > best.ratio:
                best = choice
        assert best is not None  # candidates is non-empty and contains min_distance
        return best

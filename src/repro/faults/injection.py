"""Random (non-adversarial) fault injection.

The paper's competitive ratios are worst-case: the adversary chooses both
the target and the faulty robots after seeing the strategy.  In practice
faults are often random, and a natural question for a user of the library is
how much slack the adversarial bound leaves on average.  This module
injects *uniformly random* crash-fault sets and measures the resulting
detection ratios, so that average-case behaviour can be compared against
the adversarial guarantee:

* every random-fault ratio is at most the adversarial ratio for the same
  target (the adversarial fault set dominates any fixed one);
* the mean over fault sets is typically well below the bound — quantified
  by :func:`simulate_random_faults` and asserted in the failure-injection
  tests.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.problem import SearchProblem
from ..exceptions import InvalidProblemError
from ..geometry.rays import RayPoint
from ..geometry.trajectory import Trajectory
from ..geometry.visits import first_visits
from ..strategies.base import Strategy

__all__ = [
    "RandomFaultTrial",
    "FaultInjectionReport",
    "detection_time_with_faults",
    "simulate_random_faults",
]


def detection_time_with_faults(
    trajectories: Sequence[Trajectory],
    target: RayPoint,
    faulty_robots: Sequence[int],
) -> float:
    """Detection time when a *fixed* set of robots is crash-faulty.

    The target is confirmed at the first visit by a robot outside
    ``faulty_robots`` (``math.inf`` if no healthy robot ever reaches it).
    """
    faulty = set(faulty_robots)
    for visit in first_visits(trajectories, target):
        if visit.robot not in faulty:
            return visit.time
    return math.inf


@dataclass(frozen=True)
class RandomFaultTrial:
    """One fault-injection trial: the sampled fault set, target and outcome."""

    target: RayPoint
    faulty_robots: Tuple[int, ...]
    detection_time: float
    ratio: float


@dataclass
class FaultInjectionReport:
    """Aggregate of a fault-injection campaign.

    ``adversarial_ratio`` is the worst-case ratio over the same targets with
    the adversarial fault assignment, for comparison.
    """

    trials: List[RandomFaultTrial]
    adversarial_ratio: float

    @property
    def mean_ratio(self) -> float:
        """Average ratio over all trials (``inf`` if any trial never detects)."""
        if not self.trials:
            return math.nan
        return sum(trial.ratio for trial in self.trials) / len(self.trials)

    @property
    def max_ratio(self) -> float:
        """Worst ratio observed across the random trials."""
        if not self.trials:
            return math.nan
        return max(trial.ratio for trial in self.trials)

    @property
    def slack(self) -> float:
        """How much head-room the adversarial bound leaves on average."""
        return self.adversarial_ratio - self.mean_ratio

    def quantile(self, q: float) -> float:
        """Empirical ``q``-quantile of the trial ratios (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise InvalidProblemError(f"quantile must be in [0, 1], got {q}")
        if not self.trials:
            return math.nan
        ordered = sorted(trial.ratio for trial in self.trials)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


def simulate_random_faults(
    strategy: Strategy,
    horizon: float,
    num_trials: int = 200,
    seed: int = 0,
    targets: Optional[Sequence[RayPoint]] = None,
) -> FaultInjectionReport:
    """Run a random fault-injection campaign against a strategy.

    Each trial samples a uniformly random set of ``f`` faulty robots and a
    target (uniformly among the provided targets, or geometrically spread
    over ``[1, horizon]`` on random rays when none are given), then records
    the detection ratio with that fixed fault set.
    """
    problem: SearchProblem = strategy.problem
    if num_trials < 1:
        raise InvalidProblemError("need at least one trial")
    rng = random.Random(seed)
    trajectories = strategy.trajectories(horizon)

    if targets is None:
        targets = []
        for _ in range(32):
            exponent = rng.uniform(0.0, math.log10(max(horizon, 10.0)))
            targets.append(
                RayPoint(
                    ray=rng.randrange(problem.num_rays),
                    distance=min(horizon, max(1.0, 10.0**exponent)),
                )
            )

    # Adversarial reference over the same targets.
    from .adversary import Adversary

    adversary = Adversary(problem)
    adversarial_ratio = max(
        adversary.response_at(trajectories, target).ratio for target in targets
    )

    trials: List[RandomFaultTrial] = []
    robots = list(range(problem.num_robots))
    for _ in range(num_trials):
        target = targets[rng.randrange(len(targets))]
        faulty = tuple(sorted(rng.sample(robots, problem.num_faulty)))
        detection_time = detection_time_with_faults(trajectories, target, faulty)
        ratio = detection_time / target.distance
        trials.append(
            RandomFaultTrial(
                target=target,
                faulty_robots=faulty,
                detection_time=detection_time,
                ratio=ratio,
            )
        )
    return FaultInjectionReport(trials=trials, adversarial_ratio=adversarial_ratio)

"""Random (non-adversarial) fault injection.

The paper's competitive ratios are worst-case: the adversary chooses both
the target and the faulty robots after seeing the strategy.  In practice
faults are often random, and a natural question for a user of the library is
how much slack the adversarial bound leaves on average.  This module
injects *uniformly random* crash-fault sets and measures the resulting
detection ratios, so that average-case behaviour can be compared against
the adversarial guarantee:

* every random-fault ratio is at most the adversarial ratio for the same
  target (the adversarial fault set dominates any fixed one);
* the mean over fault sets is typically well below the bound — quantified
  by :func:`simulate_random_faults` and asserted in the failure-injection
  tests.

Seeding and reproducibility
---------------------------
All randomness flows through an explicit :class:`numpy.random.Generator`
(built from the ``seed`` argument by
:func:`repro.simulation.monte_carlo.as_generator`); a fixed seed yields a
bit-identical report.  Trials are sampled *once* as matrices
(:func:`repro.simulation.monte_carlo.sample_fault_trials`) and then
evaluated by either engine — ``engine="vectorized"`` (default, one batched
pass over the compiled arrival arrays) or ``engine="scalar"`` (the
per-trial reference loop) — so the two engines see identical draws and are
differentially testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.problem import SearchProblem
from ..exceptions import InvalidProblemError
from ..geometry.rays import RayPoint
from ..geometry.trajectory import Trajectory
from ..geometry.visits import first_visits
from ..simulation.engine import DEFAULT_ENGINE
from ..simulation.monte_carlo import (
    FaultTrialBatch,
    SeedLike,
    SequentialEstimator,
    TrialStatistics,
    as_generator,
    fault_detection_times,
    iter_chunk_seeds,
    sample_fault_trials,
    trial_detection_time,
)
from ..strategies.base import Strategy

__all__ = [
    "RandomFaultTrial",
    "FaultInjectionReport",
    "detection_time_with_faults",
    "detection_time_with_crash_times",
    "sample_spread_targets",
    "simulate_random_faults",
]


def detection_time_with_faults(
    trajectories: Sequence[Trajectory],
    target: RayPoint,
    faulty_robots: Sequence[int],
) -> float:
    """Detection time when a *fixed* set of robots is crash-faulty.

    The target is confirmed at the first visit by a robot outside
    ``faulty_robots`` (``math.inf`` if no healthy robot ever reaches it).
    """
    faulty = set(faulty_robots)
    for visit in first_visits(trajectories, target):
        if visit.robot not in faulty:
            return visit.time
    return math.inf


def detection_time_with_crash_times(
    trajectories: Sequence[Trajectory],
    target: RayPoint,
    crash_times: Sequence[float],
) -> float:
    """Detection time when each robot reports visits only up to a cut-off.

    ``crash_times[r]`` is robot ``r``'s report cut-off: its visit counts
    when the arrival is no later than the cut-off (``inf`` for a healthy
    robot, 0 for a classically silent crash fault).  This is the scalar
    reference semantics of the ``"uniform"`` crash model of
    :func:`repro.simulation.monte_carlo.sample_fault_trials`.
    """
    if len(crash_times) != len(trajectories):
        raise InvalidProblemError(
            f"need one crash time per robot: got {len(crash_times)} "
            f"for {len(trajectories)} trajectories"
        )
    return trial_detection_time(trajectories, target, crash_times)


@dataclass(frozen=True)
class RandomFaultTrial:
    """One fault-injection trial: the sampled fault set, target and outcome."""

    target: RayPoint
    faulty_robots: Tuple[int, ...]
    detection_time: float
    ratio: float


@dataclass
class FaultInjectionReport:
    """Aggregate of a fault-injection campaign.

    ``adversarial_ratio`` is the worst-case ratio over the same targets with
    the adversarial fault assignment, for comparison.  ``engine`` records
    which evaluation path produced the detection times.
    """

    trials: List[RandomFaultTrial]
    adversarial_ratio: float
    engine: str = DEFAULT_ENGINE
    #: ``None`` for a fixed-count campaign; for an adaptive campaign, True
    #: when the target standard error was reached before the trial budget.
    converged: Optional[bool] = None

    @property
    def mean_ratio(self) -> float:
        """Average ratio over all trials (``inf`` if any trial never detects)."""
        if not self.trials:
            return math.nan
        return sum(trial.ratio for trial in self.trials) / len(self.trials)

    @property
    def max_ratio(self) -> float:
        """Worst ratio observed across the random trials."""
        if not self.trials:
            return math.nan
        return max(trial.ratio for trial in self.trials)

    @property
    def slack(self) -> float:
        """How much head-room the adversarial bound leaves on average."""
        return self.adversarial_ratio - self.mean_ratio

    @cached_property
    def statistics(self) -> TrialStatistics:
        """Rich trial statistics (mean, standard error, quantiles, batches).

        Computed once and cached on the report — the trial list is treated
        as immutable after construction.
        """
        return TrialStatistics.from_sample([trial.ratio for trial in self.trials])

    @property
    def std_error(self) -> float:
        """Standard error of the mean ratio."""
        return self.statistics.std_error

    def to_dict(self) -> dict:
        """Summary dict (trial statistics, not the raw trial list).

        The stochastic columns mirror
        :class:`repro.analysis.sweep.StochasticSweepRow`, so a serialised
        report is directly comparable to a serial sweep row.
        """
        statistics = self.statistics
        return {
            "num_trials": statistics.num_trials,
            "trials_used": statistics.num_trials,
            "converged": self.converged,
            "adversarial_ratio": self.adversarial_ratio,
            "mean_ratio": statistics.mean,
            "std_error": statistics.std_error,
            "quantile_95": statistics.quantile(0.95),
            "max_ratio": statistics.maximum,
            "slack": self.adversarial_ratio - statistics.mean,
            "engine": self.engine,
            "statistics": statistics.to_dict(),
        }

    def quantile(self, q: float) -> float:
        """Empirical ``q``-quantile of the trial ratios (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise InvalidProblemError(f"quantile must be in [0, 1], got {q}")
        if not self.trials:
            return math.nan
        ordered = sorted(trial.ratio for trial in self.trials)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


def sample_spread_targets(
    rng: np.random.Generator,
    num_rays: int,
    horizon: float,
    count: int = 32,
) -> List[RayPoint]:
    """Sample targets geometrically spread over ``[1, horizon]`` on random rays.

    The distance exponent is uniform, so target magnitudes cover every
    decade of the horizon equally — the spread the default fault-injection
    campaign draws its target pool from.
    """
    if count < 1:
        raise InvalidProblemError("need at least one target")
    targets: List[RayPoint] = []
    for _ in range(count):
        exponent = rng.uniform(0.0, math.log10(max(horizon, 10.0)))
        targets.append(
            RayPoint(
                ray=int(rng.integers(0, num_rays)),
                distance=min(horizon, max(1.0, 10.0**exponent)),
            )
        )
    return targets


def _trials_from_batch(
    batch: FaultTrialBatch, detection_times: np.ndarray
) -> List[RandomFaultTrial]:
    """Materialise per-trial records from one evaluated batch."""
    trials: List[RandomFaultTrial] = []
    for trial in range(batch.num_trials):
        target = batch.target(trial)
        detection_time = float(detection_times[trial])
        trials.append(
            RandomFaultTrial(
                target=target,
                faulty_robots=batch.faulty_robots(trial),
                detection_time=detection_time,
                ratio=detection_time / target.distance,
            )
        )
    return trials


def simulate_random_faults(
    strategy: Strategy,
    horizon: float,
    num_trials: int = 200,
    seed: SeedLike = 0,
    targets: Optional[Sequence[RayPoint]] = None,
    engine: str = DEFAULT_ENGINE,
    crash_model: str = "silent",
    target_se: Optional[float] = None,
    max_trials: Optional[int] = None,
    chunk_trials: Optional[int] = None,
    on_chunk: Optional[Callable[[int, int, int, float], None]] = None,
) -> FaultInjectionReport:
    """Run a random fault-injection campaign against a strategy.

    Each trial samples a uniformly random set of ``f`` faulty robots and a
    target (uniformly among the provided targets, or geometrically spread
    over ``[1, horizon]`` on random rays when none are given), then records
    the detection ratio with that fixed fault set.  ``engine`` selects the
    batched (``"vectorized"``, default) or per-trial (``"scalar"``)
    evaluation path over the *same* seeded draws; ``crash_model`` is
    ``"silent"`` (faulty robots never report) or ``"uniform"`` (faulty
    robots report visits up to a uniform random cut-off).

    Setting any of ``target_se``/``max_trials``/``chunk_trials`` switches
    to *adaptive* (sequential) estimation: trials are evaluated in seeded
    chunks (per-chunk streams from :func:`iter_chunk_seeds`) and the run
    stops as soon as the sample's standard error reaches ``target_se``, or
    after ``max_trials`` (default ``num_trials``) regardless.
    ``chunk_trials`` defaults to an eighth of the budget.  The chunk
    schedule is a pure function of the spec, so adaptive runs are exactly
    as reproducible as fixed-count ones; with all three unset the legacy
    single-draw path runs unchanged, bit-identical to earlier versions.
    ``on_chunk(index, size, trials_used, std_error)`` is invoked after
    each evaluated chunk (telemetry hook; never affects results).
    """
    problem: SearchProblem = strategy.problem
    if num_trials < 1:
        raise InvalidProblemError("need at least one trial")
    adaptive = (
        target_se is not None or max_trials is not None or chunk_trials is not None
    )
    rng = as_generator(seed)
    trajectories = strategy.materialise(horizon)

    if targets is None:
        targets = sample_spread_targets(rng, problem.num_rays, horizon)

    # Adversarial reference over the same targets.
    from .adversary import Adversary

    adversary = Adversary(problem)
    adversarial_ratio = max(
        adversary.response_at(trajectories, target).ratio for target in targets
    )

    if not adaptive:
        batch: FaultTrialBatch = sample_fault_trials(
            rng,
            num_trials=num_trials,
            num_robots=problem.num_robots,
            num_faulty=problem.num_faulty,
            targets=targets,
            crash_model=crash_model,
            horizon=horizon,
        )
        detection_times = fault_detection_times(trajectories, batch, engine=engine)
        return FaultInjectionReport(
            trials=_trials_from_batch(batch, detection_times),
            adversarial_ratio=adversarial_ratio,
            engine=engine,
        )

    estimator = SequentialEstimator(
        max_trials=max_trials if max_trials is not None else num_trials,
        chunk_trials=chunk_trials,
        target_se=target_se,
    )
    chunk_seeds = iter_chunk_seeds(seed)
    distances = np.asarray([target.distance for target in targets], dtype=float)
    trials: List[RandomFaultTrial] = []
    chunk_index = 0
    while True:
        size = estimator.next_chunk()
        if size == 0:
            break
        chunk_batch = sample_fault_trials(
            as_generator(next(chunk_seeds)),
            num_trials=size,
            num_robots=problem.num_robots,
            num_faulty=problem.num_faulty,
            targets=targets,
            crash_model=crash_model,
            horizon=horizon,
        )
        chunk_times = fault_detection_times(trajectories, chunk_batch, engine=engine)
        std_error = estimator.add_chunk(
            chunk_times / distances[chunk_batch.target_indices]
        )
        trials.extend(_trials_from_batch(chunk_batch, chunk_times))
        if on_chunk is not None:
            on_chunk(chunk_index, size, estimator.trials_used, std_error)
        chunk_index += 1
    return FaultInjectionReport(
        trials=trials,
        adversarial_ratio=adversarial_ratio,
        engine=engine,
        converged=estimator.converged,
    )

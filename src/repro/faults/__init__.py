"""Fault substrate: fault models, the adversary, and Byzantine comparisons."""

from .adversary import (
    Adversary,
    AdversaryChoice,
    candidate_distances,
    candidate_targets,
)
from .byzantine import (
    ByzantineBoundComparison,
    headline_improvement,
    improvement_table,
)
from .injection import (
    FaultInjectionReport,
    RandomFaultTrial,
    detection_time_with_crash_times,
    detection_time_with_faults,
    sample_spread_targets,
    simulate_random_faults,
)
from .models import (
    ByzantineFaultModel,
    CrashFaultModel,
    FaultModel,
    NoFaultModel,
    fault_model_for,
)

__all__ = [
    "Adversary",
    "AdversaryChoice",
    "candidate_distances",
    "candidate_targets",
    "ByzantineBoundComparison",
    "headline_improvement",
    "improvement_table",
    "ByzantineFaultModel",
    "CrashFaultModel",
    "FaultModel",
    "NoFaultModel",
    "fault_model_for",
    "FaultInjectionReport",
    "RandomFaultTrial",
    "detection_time_with_crash_times",
    "detection_time_with_faults",
    "sample_spread_targets",
    "simulate_random_faults",
]

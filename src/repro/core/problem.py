"""Search-problem definitions.

The central object of the paper is the following game.  ``k`` unit-speed
robots start at the origin of a star of ``m`` rays (the real line is the
special case ``m = 2``).  A target is hidden at distance ``|x| >= 1`` from
the origin on one of the rays.  ``f`` of the robots are *faulty*:

* **crash** faults silently fail to report the target when they pass it;
* **Byzantine** faults may additionally fabricate a report.

The (time) competitive ratio of a collective strategy is the supremum over
target positions of ``tau(x) / |x|`` where ``tau(x)`` is the time at which
the non-faulty robots are certain of the target location.

:class:`SearchProblem` validates parameters, classifies the parameter regime
(Theorem 1 / Theorem 6 discussion), and exposes the derived quantities used
throughout the library (``rho``, ``s``, ``q``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..exceptions import InvalidProblemError

__all__ = [
    "FaultType",
    "Regime",
    "SearchProblem",
    "line_problem",
    "ray_problem",
]


class FaultType(str, enum.Enum):
    """The two fault models studied by the paper.

    ``CRASH`` robots (the focus of Theorem 1 and Theorem 6) stay silent when
    they reach the target.  ``BYZANTINE`` robots (studied by Czyzowitz et
    al., ISAAC 2016) may also issue false reports; every crash lower bound
    transfers to the Byzantine model.
    """

    NONE = "none"
    CRASH = "crash"
    BYZANTINE = "byzantine"


class Regime(str, enum.Enum):
    """Parameter regimes of the (m, k, f) search problem.

    * ``TRIVIAL`` — ``k >= m * (f + 1)``: sending ``f + 1`` robots straight
      out on each ray achieves competitive ratio exactly 1.
    * ``INTERESTING`` — ``f < k < m * (f + 1)``: the regime covered by
      Theorem 1 (``m = 2``) and Theorem 6 (general ``m``), where the optimal
      ratio is ``2 * (q^q / ((q-k)^(q-k) k^k))^(1/k) + 1`` with
      ``q = m (f + 1)``.
    * ``IMPOSSIBLE`` — ``k == f``: every robot is faulty, so the target can
      never be confirmed and no finite ratio exists.
    """

    TRIVIAL = "trivial"
    INTERESTING = "interesting"
    IMPOSSIBLE = "impossible"


@dataclass(frozen=True)
class SearchProblem:
    """An instance of the faulty-robot search problem.

    Parameters
    ----------
    num_rays:
        Number of rays ``m`` emanating from the origin.  The real line is
        ``m = 2`` (ray 0 is the positive half-line, ray 1 the negative one).
    num_robots:
        Number of robots ``k`` sent out from the origin.
    num_faulty:
        Number of faulty robots ``f`` (``0 <= f <= k``).  The identity of
        the faulty robots is chosen adversarially and is unknown to the
        searcher.
    fault_type:
        The fault model; defaults to crash faults, the model for which the
        paper proves tight bounds.
    min_target_distance:
        The target is guaranteed to be at distance at least this value from
        the origin (the paper normalises it to 1).

    Examples
    --------
    >>> p = SearchProblem(num_rays=2, num_robots=3, num_faulty=1)
    >>> p.regime
    <Regime.INTERESTING: 'interesting'>
    >>> round(p.rho, 4)
    1.3333
    """

    num_rays: int
    num_robots: int
    num_faulty: int = 0
    fault_type: FaultType = FaultType.CRASH
    min_target_distance: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.num_rays, int) or self.num_rays < 1:
            raise InvalidProblemError(
                f"num_rays must be a positive integer, got {self.num_rays!r}"
            )
        if not isinstance(self.num_robots, int) or self.num_robots < 1:
            raise InvalidProblemError(
                f"num_robots must be a positive integer, got {self.num_robots!r}"
            )
        if not isinstance(self.num_faulty, int) or self.num_faulty < 0:
            raise InvalidProblemError(
                f"num_faulty must be a non-negative integer, got {self.num_faulty!r}"
            )
        if self.num_faulty > self.num_robots:
            raise InvalidProblemError(
                "num_faulty cannot exceed num_robots "
                f"({self.num_faulty} > {self.num_robots})"
            )
        if self.num_faulty > 0 and self.fault_type is FaultType.NONE:
            raise InvalidProblemError(
                "fault_type must be CRASH or BYZANTINE when num_faulty > 0"
            )
        if not self.min_target_distance > 0:
            raise InvalidProblemError(
                "min_target_distance must be positive, got "
                f"{self.min_target_distance!r}"
            )

    # ------------------------------------------------------------------
    # Derived quantities used by the paper
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Alias for :attr:`num_rays`, matching the paper's notation."""
        return self.num_rays

    @property
    def k(self) -> int:
        """Alias for :attr:`num_robots`, matching the paper's notation."""
        return self.num_robots

    @property
    def f(self) -> int:
        """Alias for :attr:`num_faulty`, matching the paper's notation."""
        return self.num_faulty

    @property
    def q(self) -> int:
        """The covering multiplicity ``q = m * (f + 1)`` from Theorem 6.

        A point can only be confirmed once ``f + 1`` robots have visited it,
        so over all ``m`` rays the robots must collectively produce a
        ``q``-fold covering in the ORC relaxation.
        """
        return self.num_rays * (self.num_faulty + 1)

    @property
    def s(self) -> int:
        """The quantity ``s = 2(f+1) - k`` from Theorem 1 (line only).

        ``s`` is the number of robots that must cover *both* ``x`` and
        ``-x`` within the deadline.  Only meaningful when ``m == 2``.
        """
        return 2 * (self.num_faulty + 1) - self.num_robots

    @property
    def rho(self) -> float:
        """The exponent ``rho = m (f + 1) / k`` appearing in the bound."""
        return self.q / self.num_robots

    @property
    def required_visits(self) -> int:
        """Number of distinct robot visits needed to confirm the target.

        With ``f`` crash-faulty robots the adversary silences the first
        ``f`` visitors, so the target is only confirmed when the
        ``(f + 1)``-th distinct robot arrives.
        """
        return self.num_faulty + 1

    @property
    def regime(self) -> Regime:
        """Classify the parameter regime (see :class:`Regime`)."""
        if self.num_robots == self.num_faulty:
            return Regime.IMPOSSIBLE
        if self.num_robots >= self.q:
            return Regime.TRIVIAL
        return Regime.INTERESTING

    @property
    def is_line(self) -> bool:
        """True when the domain is the real line (``m == 2``)."""
        return self.num_rays == 2

    def describe(self) -> str:
        """Return a one-line human-readable description of the instance."""
        fault = (
            "no faults"
            if self.num_faulty == 0
            else f"{self.num_faulty} {self.fault_type.value} fault(s)"
        )
        domain = "the real line" if self.is_line else f"{self.num_rays} rays"
        return (
            f"{self.num_robots} robot(s) searching {domain} with {fault} "
            f"[regime: {self.regime.value}]"
        )


def line_problem(
    num_robots: int,
    num_faulty: int = 0,
    fault_type: FaultType = FaultType.CRASH,
) -> SearchProblem:
    """Build the line-search instance (``m = 2``) studied by Theorem 1."""
    if num_faulty == 0:
        fault_type = FaultType.NONE
    return SearchProblem(
        num_rays=2,
        num_robots=num_robots,
        num_faulty=num_faulty,
        fault_type=fault_type,
    )


def ray_problem(
    num_rays: int,
    num_robots: int,
    num_faulty: int = 0,
    fault_type: FaultType = FaultType.CRASH,
) -> SearchProblem:
    """Build the ``m``-ray instance studied by Theorem 6."""
    if num_faulty == 0:
        fault_type = FaultType.NONE
    return SearchProblem(
        num_rays=num_rays,
        num_robots=num_robots,
        num_faulty=num_faulty,
        fault_type=fault_type,
    )

"""Covering settings used by the lower-bound proofs.

Section 2 and Section 3.1 of the paper replace the search problem by two
covering relaxations and reason exclusively about them:

* **Symmetric line-cover (±-cover) setting** — a robot on the line covers
  the symmetric pair ``(x, -x)`` at the moment it has visited *both*; the
  pair is *lambda-covered* when this happens by time ``lambda x``.  Any
  strategy with competitive ratio ``lambda`` against ``f`` crash faults
  induces an ``s``-fold lambda-cover of ``[1, inf)`` with
  ``s = 2(f+1) - k``.
* **One-ray cover with returns (ORC) setting** — robots move on a single
  ray, returning to the origin between rounds; each round covers an
  interval, and multiple rounds of the same robot count separately.  An
  ``m``-ray strategy with ratio ``lambda`` induces a ``q``-fold
  lambda-cover with ``q = m (f + 1)``.

This module turns both settings into data: per-robot *cover intervals*
(Eq. 3 and its ORC analogue), coverage-multiplicity queries, hole finding,
and the *assigned interval* construction (trimming a valid cover so that
every point is covered exactly ``s`` times) that the potential function of
:mod:`repro.core.potential` consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import CoverageHoleError, InvalidStrategyError
from ..strategies.validation import covered_intervals

__all__ = [
    "CoverInterval",
    "line_cover_intervals",
    "orc_cover_intervals",
    "multiplicity_at",
    "minimum_multiplicity",
    "find_hole",
    "is_fold_cover",
    "AssignedInterval",
    "assign_exact_cover",
]


@dataclass(frozen=True)
class CoverInterval:
    """An interval of distances covered by one robot within the deadline.

    ``left`` and ``right`` delimit the covered distances (interpreted as a
    closed interval ``[left, right]`` of the original cover; assignments
    later truncate it to a half-open ``(left', right]``).  ``robot`` is the
    owning robot and ``turn_index`` the index of the turning point / round
    that produced it.
    """

    left: float
    right: float
    robot: int
    turn_index: int

    def __post_init__(self) -> None:
        if self.right < self.left:
            raise InvalidStrategyError(
                f"cover interval has right < left: ({self.left}, {self.right})"
            )

    @property
    def width(self) -> float:
        """Length of the interval."""
        return self.right - self.left


def line_cover_intervals(
    turning_sequences: Sequence[Sequence[float]], mu: float
) -> List[CoverInterval]:
    """Cover intervals of the ±-cover setting for ``k`` line robots.

    ``turning_sequences[r]`` is robot ``r``'s alternating turning-point
    sequence ``(t1, t2, ...)`` as in Section 2; the robot lambda-covers
    ``[t''_i, t_i]`` at every fruitful turn (Eq. 3), with
    ``lambda = 2 mu + 1``.
    """
    intervals: List[CoverInterval] = []
    for robot, sequence in enumerate(turning_sequences):
        for turn_index, (left, right) in enumerate(covered_intervals(sequence, mu)):
            intervals.append(
                CoverInterval(left=left, right=right, robot=robot, turn_index=turn_index)
            )
    return intervals


def orc_cover_intervals(
    radii_sequences: Sequence[Sequence[float]], mu: float
) -> List[CoverInterval]:
    """Cover intervals of the ORC setting for ``k`` single-ray robots.

    ``radii_sequences[r]`` lists the turning radii of robot ``r``'s rounds
    (the robot returns to the origin after each round).  Round ``i`` covers
    ``x`` iff ``x <= t_i`` and ``2 (t_1 + ... + t_{i-1}) + x <= lambda x``,
    i.e. the covered interval is ``[ (t_1 + ... + t_{i-1}) / mu , t_i ]``
    when non-empty (the round is then *fruitful*).
    """
    if mu <= 0:
        raise InvalidStrategyError(f"mu must be positive, got {mu}")
    intervals: List[CoverInterval] = []
    for robot, radii in enumerate(radii_sequences):
        prefix = 0.0
        for turn_index, radius in enumerate(radii):
            if radius <= 0:
                raise InvalidStrategyError(
                    f"round radii must be positive, got {radius}"
                )
            left = prefix / mu
            if left <= radius:
                intervals.append(
                    CoverInterval(
                        left=left, right=float(radius), robot=robot, turn_index=turn_index
                    )
                )
            prefix += radius
    return intervals


# ----------------------------------------------------------------------
# Multiplicity queries
# ----------------------------------------------------------------------
def multiplicity_at(intervals: Sequence[CoverInterval], x: float) -> int:
    """Number of cover intervals containing the point ``x``."""
    return sum(1 for interval in intervals if interval.left <= x <= interval.right)


def _elementary_segments(
    intervals: Sequence[CoverInterval], lo: float, hi: float
) -> List[Tuple[float, float]]:
    """Split ``[lo, hi]`` at every interval endpoint that falls inside it."""
    if hi < lo:
        raise InvalidStrategyError(f"empty range [{lo}, {hi}]")
    cuts = {lo, hi}
    for interval in intervals:
        for value in (interval.left, interval.right):
            if lo < value < hi:
                cuts.add(value)
    ordered = sorted(cuts)
    return list(zip(ordered[:-1], ordered[1:]))


def minimum_multiplicity(
    intervals: Sequence[CoverInterval], lo: float, hi: float
) -> int:
    """Minimum coverage multiplicity over the range ``[lo, hi]``.

    Multiplicity is evaluated at the midpoint of every elementary segment
    (between consecutive interval endpoints), which is exact because the
    multiplicity is constant on the interior of each segment.
    """
    segments = _elementary_segments(intervals, lo, hi)
    if not segments:
        return multiplicity_at(intervals, lo)
    return min(
        multiplicity_at(intervals, (a + b) / 2.0) for a, b in segments
    )


def find_hole(
    intervals: Sequence[CoverInterval], fold: int, lo: float, hi: float
) -> Optional[float]:
    """A witness point of ``[lo, hi]`` covered fewer than ``fold`` times, if any.

    Returns the midpoint of the first elementary segment whose multiplicity
    is below ``fold``, or ``None`` when the range is properly ``fold``-fold
    covered.
    """
    for a, b in _elementary_segments(intervals, lo, hi):
        midpoint = (a + b) / 2.0
        if multiplicity_at(intervals, midpoint) < fold:
            return midpoint
    return None


def is_fold_cover(
    intervals: Sequence[CoverInterval], fold: int, lo: float, hi: float
) -> bool:
    """True when every point of ``[lo, hi]`` is covered at least ``fold`` times."""
    return find_hole(intervals, fold, lo, hi) is None


# ----------------------------------------------------------------------
# Assigned intervals (exact-fold trimming)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AssignedInterval:
    """A trimmed cover interval ``(left, right]`` used by the potential function.

    ``right`` is always the original turning point (the paper keeps the
    right ends); ``left`` has been moved right so that the collection covers
    every point of the target range exactly ``fold`` times.  ``original_left``
    retains the untrimmed Eq.-3 left end so constraint (4) can be checked.
    """

    left: float
    right: float
    robot: int
    turn_index: int
    original_left: float

    def __post_init__(self) -> None:
        if self.right < self.left:
            raise InvalidStrategyError(
                f"assigned interval has right < left: ({self.left}, {self.right})"
            )
        if self.left < self.original_left - 1e-9:
            raise InvalidStrategyError(
                "assigned interval extends left of its cover interval"
            )


def assign_exact_cover(
    intervals: Sequence[CoverInterval],
    fold: int,
    lo: float,
    hi: float,
) -> List[AssignedInterval]:
    """Trim a valid ``fold``-fold cover of ``[lo, hi]`` into an exact cover.

    Implements the construction of Section 2: every point of ``(lo, hi]``
    ends up covered by exactly ``fold`` assigned intervals, each assigned
    interval is a right-suffix ``(left', right]`` of its cover interval, and
    unneeded cover intervals are dropped.  The greedy sweep keeps an
    interval "in use" until its right end once started (a suffix must be
    contiguous) and tops the in-use count back up to ``fold`` at every
    elementary segment, preferring intervals with the earliest right end.

    Raises
    ------
    CoverageHoleError
        If the input is not actually a ``fold``-fold cover of ``[lo, hi]``.
    """
    if fold < 1:
        raise InvalidStrategyError(f"fold must be at least 1, got {fold}")
    segments = _elementary_segments(intervals, lo, hi)
    if not segments:
        return []

    # State per cover interval: None (never started), "active", or "done".
    state: Dict[int, Optional[str]] = {index: None for index in range(len(intervals))}
    assigned_left: Dict[int, float] = {}

    active: List[int] = []
    for a, b in segments:
        # Retire intervals whose right end does not reach past ``a``.
        still_active = []
        for index in active:
            if intervals[index].right >= b - 1e-15:
                still_active.append(index)
            else:
                state[index] = "done"
        active = still_active

        deficit = fold - len(active)
        if deficit < 0:  # pragma: no cover - the sweep never overfills
            raise InvalidStrategyError("assignment sweep overfilled a segment")
        if deficit > 0:
            candidates = [
                index
                for index, interval in enumerate(intervals)
                if state[index] is None
                and interval.left <= a + 1e-12
                and interval.right >= b - 1e-15
            ]
            candidates.sort(key=lambda index: intervals[index].right)
            if len(candidates) < deficit:
                raise CoverageHoleError(
                    f"range ({a}, {b}] is covered only "
                    f"{len(active) + len(candidates)} < {fold} times"
                )
            for index in candidates[:deficit]:
                state[index] = "active"
                assigned_left[index] = a
                active.append(index)

    result = [
        AssignedInterval(
            left=assigned_left[index],
            right=intervals[index].right,
            robot=intervals[index].robot,
            turn_index=intervals[index].turn_index,
            original_left=intervals[index].left,
        )
        for index in assigned_left
    ]
    result.sort(key=lambda interval: (interval.left, interval.robot, interval.turn_index))
    return result

"""The potential functions of the lower-bound proofs, made executable.

Theorem 3 (line, ±-cover setting) analyses the function of Eq. (7)

.. math::

   f(\\mathcal{P}) \\;=\\; \\prod_{r=1}^{k}
        \\frac{\\bigl(L^{(r)}(\\mathcal{P})\\bigr)^{s}}
             {\\prod_{y \\in A(\\mathcal{P})} y}

over growing prefixes ``P`` of the assigned intervals (sorted by left
endpoint), where ``L^(r)`` is robot ``r``'s *load* (sum of the turning
points of its assigned intervals in ``P``) and ``A(P) = {a_s, ..., a_1}``
records the coverage frontiers.  Two facts produce the contradiction:

* boundedness (Eq. 8): ``f(P) <= mu^{k s}`` for every prefix of a *valid*
  cover, because loads are at most ``mu a`` and every frontier is at least
  ``a``;
* growth (Lemma 5): appending one interval multiplies ``f`` by
  ``mu*^s / (x^s (mu* - x)^k) >= delta``, and ``delta > 1`` whenever
  ``mu`` is below the critical value.

The ORC-setting proof (Eq. 15) uses the variant

.. math::

   f(\\mathcal{P}) \\;=\\; \\prod_{r=1}^{k}
        \\frac{\\bigl(L^{(r)}\\bigr)^{q-k}\\,\\bigl(b^{(r)}\\bigr)^{k}}
             {\\prod_{y \\in A(\\mathcal{P})} y}

where ``b^(r)`` is the left end of robot ``r``'s next, not-yet-included
assigned interval.

This module tracks both potentials step by step over concrete assignment
data (produced by :func:`repro.core.covering.assign_exact_cover`) and
records, for every step, the observed ratio together with the Lemma-5
floor — which is how the certificates of
:mod:`repro.core.certificates` and the E6/E8 benches validate the proof
numerically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..exceptions import CertificateError, InvalidStrategyError
from .covering import AssignedInterval
from .lemmas import delta as lemma5_delta

__all__ = [
    "PotentialStep",
    "PotentialTrace",
    "trace_line_potential",
    "trace_orc_potential",
]


@dataclass(frozen=True)
class PotentialStep:
    """One prefix-extension step of the potential argument.

    Attributes
    ----------
    interval:
        The assigned interval appended at this step.
    frontier:
        The value ``a = a_s`` (equivalently the interval's left end) at the
        moment of the step.
    load_before / load_after:
        The owning robot's load before and after the step.
    mu_star:
        ``load_after / frontier`` (for the line potential) — the effective
        slack parameter; the proof guarantees ``mu_star <= mu``.
    x:
        ``load_before / frontier`` — the variable of Lemma 4/5.
    ratio:
        Observed multiplicative change ``f(P+) / f(P)``.
    lemma5_floor:
        The Lemma-5 lower bound for this step given the global ``mu``.
    potential:
        Value of ``f`` *after* the step.
    """

    interval: AssignedInterval
    frontier: float
    load_before: float
    load_after: float
    mu_star: float
    x: float
    ratio: float
    lemma5_floor: float
    potential: float


@dataclass
class PotentialTrace:
    """The full trajectory of the potential over a sequence of prefixes.

    ``initial_potential`` is the value of ``f`` for the starting prefix
    (the shortest prefix in which every robot owns at least one assigned
    interval); ``steps`` records every subsequent extension; ``cap`` is the
    uniform upper bound of Eq. 8 / the ORC analogue.
    """

    setting: str
    mu: float
    num_robots: int
    fold: int
    initial_potential: float
    cap: float
    steps: List[PotentialStep] = field(default_factory=list)

    @property
    def final_potential(self) -> float:
        """Potential after the last recorded step."""
        if not self.steps:
            return self.initial_potential
        return self.steps[-1].potential

    @property
    def min_step_ratio(self) -> float:
        """Smallest observed ``f(P+)/f(P)`` over all steps (``inf`` if none)."""
        if not self.steps:
            return math.inf
        return min(step.ratio for step in self.steps)

    @property
    def cap_respected(self) -> bool:
        """True when the potential never exceeded the Eq.-8 cap."""
        tolerance = 1.0 + 1e-9
        if self.initial_potential > self.cap * tolerance:
            return False
        return all(step.potential <= self.cap * tolerance for step in self.steps)

    @property
    def all_steps_above_floor(self) -> bool:
        """True when every observed ratio met its Lemma-5 floor."""
        tolerance = 1.0 - 1e-9
        return all(step.ratio >= step.lemma5_floor * tolerance for step in self.steps)

    def max_steps_allowed(self) -> float:
        """Upper bound on the number of steps a valid cover could sustain.

        If every step multiplies the potential by at least ``delta > 1``
        (Lemma 5 with the global ``mu``) and the potential can never exceed
        the cap, then at most ``log(cap / initial) / log(delta)`` steps are
        possible.  Returns ``math.inf`` when ``delta <= 1`` (i.e. ``mu`` is
        at or above the critical value and the argument does not bite).
        """
        delta_value = lemma5_delta(self.mu, self.num_robots, self._lemma_s())
        if delta_value <= 1.0 or self.initial_potential <= 0:
            return math.inf
        if self.initial_potential >= self.cap:
            return 0.0
        return math.log(self.cap / self.initial_potential) / math.log(delta_value)

    def _lemma_s(self) -> int:
        """Exponent ``s`` used in Lemma 5 for this setting."""
        if self.setting == "line":
            return self.fold
        return self.fold - self.num_robots


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _group_by_robot(
    assigned: Sequence[AssignedInterval], num_robots: int
) -> Dict[int, List[AssignedInterval]]:
    grouped: Dict[int, List[AssignedInterval]] = {r: [] for r in range(num_robots)}
    for interval in assigned:
        if interval.robot not in grouped:
            raise InvalidStrategyError(
                f"assigned interval references unknown robot {interval.robot}"
            )
        grouped[interval.robot].append(interval)
    for robot_intervals in grouped.values():
        robot_intervals.sort(key=lambda interval: interval.left)
    return grouped


def _frontier_multiset(
    assigned_prefix: Sequence[AssignedInterval], fold: int, lo: float
) -> List[float]:
    """The multiset ``A(P) = {a_fold, ..., a_1}`` of coverage frontiers.

    ``a_j`` is the largest value such that ``(lo, a_j]`` is covered at
    least ``j`` times by the prefix; ``a_j = lo`` when nothing is covered
    ``j`` times yet.  Computed by sweeping the prefix's endpoints.
    """
    events: List[tuple] = []
    for interval in assigned_prefix:
        events.append((max(interval.left, lo), 1))
        events.append((interval.right, -1))
    events.sort()
    frontiers = [lo] * fold
    coverage = 0
    position = lo
    index = 0
    while index < len(events):
        value = events[index][0]
        # The coverage level on (position, value] is ``coverage``; that
        # pushes every frontier a_j with j <= coverage out to ``value``.
        if value > position and coverage >= 1:
            for j in range(min(coverage, fold)):
                frontiers[j] = max(frontiers[j], value)
        position = max(position, value)
        while index < len(events) and events[index][0] == value:
            coverage += events[index][1]
            index += 1
    # frontiers[j] currently holds a_{j+1}; the multiset is returned in the
    # paper's order a_fold <= ... <= a_1.
    return sorted(frontiers)


def _potential_value_line(
    loads: Dict[int, float], frontiers: Sequence[float], fold: int
) -> float:
    log_value = 0.0
    denominator = sum(math.log(y) for y in frontiers)
    for load in loads.values():
        if load <= 0:
            raise CertificateError(
                "line potential undefined: some robot has an empty load"
            )
        log_value += fold * math.log(load) - denominator
    return math.exp(log_value)


def _potential_value_orc(
    loads: Dict[int, float],
    next_lefts: Dict[int, float],
    frontiers: Sequence[float],
    fold: int,
    num_robots: int,
) -> float:
    log_value = 0.0
    denominator = sum(math.log(y) for y in frontiers)
    exponent = fold - num_robots
    for robot, load in loads.items():
        if load <= 0 or next_lefts[robot] <= 0:
            raise CertificateError(
                "ORC potential undefined: empty load or missing next interval"
            )
        log_value += (
            exponent * math.log(load)
            + num_robots * math.log(next_lefts[robot])
            - denominator
        )
    return math.exp(log_value)


# ----------------------------------------------------------------------
# Line (±-cover) potential, Eq. 7
# ----------------------------------------------------------------------
def trace_line_potential(
    assigned: Sequence[AssignedInterval],
    mu: float,
    num_robots: int,
    fold: int,
    lo: float = 1.0,
) -> PotentialTrace:
    """Track the Eq.-7 potential over the prefixes of an exact ``fold``-cover.

    ``assigned`` must be sorted by left endpoint (the output of
    :func:`repro.core.covering.assign_exact_cover` already is).  Tracking
    starts at the shortest prefix containing at least one interval of every
    robot, exactly as in the paper.

    Raises
    ------
    CertificateError
        If some robot owns no assigned interval at all (the potential is
        then undefined — such a robot contributes nothing and should have
        been excluded by the caller).
    """
    if mu <= 0:
        raise InvalidStrategyError(f"mu must be positive, got {mu}")
    ordered = sorted(assigned, key=lambda interval: (interval.left, interval.robot))
    grouped = _group_by_robot(ordered, num_robots)
    for robot, robot_intervals in grouped.items():
        if not robot_intervals:
            raise CertificateError(
                f"robot {robot} owns no assigned interval; potential undefined"
            )

    # Find the starting prefix: the shortest one touching every robot.
    seen: set = set()
    start_length = 0
    for index, interval in enumerate(ordered):
        seen.add(interval.robot)
        if len(seen) == num_robots:
            start_length = index + 1
            break

    loads: Dict[int, float] = {r: 0.0 for r in range(num_robots)}
    for interval in ordered[:start_length]:
        loads[interval.robot] += interval.right
    frontiers = _frontier_multiset(ordered[:start_length], fold, lo)
    initial = _potential_value_line(loads, frontiers, fold)
    cap = mu ** (num_robots * fold)
    trace = PotentialTrace(
        setting="line",
        mu=mu,
        num_robots=num_robots,
        fold=fold,
        initial_potential=initial,
        cap=cap,
    )

    potential = initial
    for interval in ordered[start_length:]:
        frontier = min(frontiers)
        load_before = loads[interval.robot]
        load_after = load_before + interval.right
        loads[interval.robot] = load_after
        # Update the frontier multiset: the smallest frontier is replaced
        # by the new interval's right end (the paper's A -> A update).
        frontiers.remove(frontier)
        frontiers.append(interval.right)
        frontiers.sort()
        new_potential = _potential_value_line(loads, frontiers, fold)
        ratio = new_potential / potential
        mu_star = load_after / frontier if frontier > 0 else math.inf
        x = load_before / frontier if frontier > 0 else math.inf
        trace.steps.append(
            PotentialStep(
                interval=interval,
                frontier=frontier,
                load_before=load_before,
                load_after=load_after,
                mu_star=mu_star,
                x=x,
                ratio=ratio,
                lemma5_floor=lemma5_delta(mu, num_robots, fold),
                potential=new_potential,
            )
        )
        potential = new_potential
    return trace


# ----------------------------------------------------------------------
# ORC potential, Eq. 15
# ----------------------------------------------------------------------
def trace_orc_potential(
    assigned: Sequence[AssignedInterval],
    mu: float,
    num_robots: int,
    fold: int,
    lo: float = 1.0,
) -> PotentialTrace:
    """Track the Eq.-15 potential over the prefixes of an exact ``fold``-cover.

    The ORC potential needs, for every robot, the left end ``b^(r)`` of the
    *next* assigned interval not yet in the prefix; tracking therefore stops
    at the last prefix for which every robot still has a pending interval.
    ``fold`` is the covering multiplicity ``q`` and must exceed
    ``num_robots`` for the exponent ``q - k`` to be positive.
    """
    if mu <= 0:
        raise InvalidStrategyError(f"mu must be positive, got {mu}")
    if fold <= num_robots:
        raise CertificateError(
            "the ORC potential needs q > k (otherwise the covering problem is trivial)"
        )
    ordered = sorted(assigned, key=lambda interval: (interval.left, interval.robot))
    grouped = _group_by_robot(ordered, num_robots)
    for robot, robot_intervals in grouped.items():
        if len(robot_intervals) < 2:
            raise CertificateError(
                f"robot {robot} owns fewer than two assigned intervals; the ORC "
                "potential needs a pending interval per robot"
            )

    # Per-robot pointers into their interval lists.
    pointer: Dict[int, int] = {r: 0 for r in range(num_robots)}

    seen: set = set()
    start_length = 0
    for index, interval in enumerate(ordered):
        seen.add(interval.robot)
        if len(seen) == num_robots:
            start_length = index + 1
            break

    loads: Dict[int, float] = {r: 0.0 for r in range(num_robots)}
    for interval in ordered[:start_length]:
        loads[interval.robot] += interval.right
        pointer[interval.robot] += 1
    # b^(r): left end of the next (pending) interval of robot r.
    next_lefts: Dict[int, float] = {}
    for robot in range(num_robots):
        robot_intervals = grouped[robot]
        if pointer[robot] >= len(robot_intervals):
            raise CertificateError(
                f"robot {robot} has no pending interval at the starting prefix"
            )
        next_lefts[robot] = robot_intervals[pointer[robot]].left

    frontiers = _frontier_multiset(ordered[:start_length], fold, lo)
    initial = _potential_value_orc(loads, next_lefts, frontiers, fold, num_robots)
    # Eq. 14 gives L_r <= mu * b_r and every y >= a <= b_r, so the cap of
    # the ORC potential over valid covers is mu^{(q-k) k} once normalised by
    # the b_r^k / prod(y) <= (b_r / a)^k terms; the uniform, strategy-free
    # cap used in Case 1 of the proof additionally involves the constant C.
    # For certification purposes we use the same mu^{k(q-k)} * (C)^{qk}
    # shape with C supplied implicitly by the data: the conservative cap
    # recorded here is the maximum over the trace of the product of
    # (b_r / a)^k, times mu^{k (q-k)}.  It is recomputed after the trace.
    cap_placeholder = math.inf
    trace = PotentialTrace(
        setting="orc",
        mu=mu,
        num_robots=num_robots,
        fold=fold,
        initial_potential=initial,
        cap=cap_placeholder,
    )

    potential = initial
    max_b_over_a = max(
        next_lefts[robot] / min(frontiers) if min(frontiers) > 0 else math.inf
        for robot in range(num_robots)
    )
    for interval in ordered[start_length:]:
        robot = interval.robot
        robot_intervals = grouped[robot]
        if pointer[robot] + 1 >= len(robot_intervals):
            # No pending interval would remain for this robot; stop tracking.
            break
        frontier = min(frontiers)
        load_before = loads[robot]
        load_after = load_before + interval.right
        loads[robot] = load_after
        pointer[robot] += 1
        new_next_left = robot_intervals[pointer[robot]].left
        previous_next_left = next_lefts[robot]
        next_lefts[robot] = new_next_left

        frontiers.remove(frontier)
        frontiers.append(interval.right)
        frontiers.sort()

        new_potential = _potential_value_orc(
            loads, next_lefts, frontiers, fold, num_robots
        )
        ratio = new_potential / potential
        mu_star = (
            load_after / new_next_left if new_next_left > 0 else math.inf
        )
        x = load_before / new_next_left if new_next_left > 0 else math.inf
        trace.steps.append(
            PotentialStep(
                interval=interval,
                frontier=frontier,
                load_before=load_before,
                load_after=load_after,
                mu_star=mu_star,
                x=x,
                ratio=ratio,
                lemma5_floor=lemma5_delta(mu, num_robots, fold - num_robots),
                potential=new_potential,
            )
        )
        potential = new_potential
        max_b_over_a = max(
            max_b_over_a,
            max(
                next_lefts[r] / min(frontiers) if min(frontiers) > 0 else math.inf
                for r in range(num_robots)
            ),
        )
    # Conservative data-driven cap (Case 1 of the proof, with the observed
    # maximum of b_r / a standing in for the constant C): each robot factor
    # is at most mu^{q-k} * (b_r / a)^q, hence the product is at most
    # mu^{k (q-k)} * C^{q k}.
    trace.cap = (mu ** (num_robots * (fold - num_robots))) * (
        max_b_over_a ** (fold * num_robots)
    )
    return trace

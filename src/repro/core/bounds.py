"""Closed-form competitive-ratio bounds from the paper.

Every formula stated in the paper is exposed here as a documented function:

* :func:`crash_line_ratio` — Theorem 1, Eq. (1):
  ``A(k, f) = 2 rho^rho / (rho - 1)^(rho - 1) + 1`` with ``rho = 2(f+1)/k``.
* :func:`crash_ray_ratio` — Theorem 6, Eq. (9):
  ``A(m, k, f) = 2 (q^q / ((q-k)^(q-k) k^k))^(1/k) + 1`` with ``q = m(f+1)``.
* :func:`orc_covering_ratio` — Eq. (10), the ORC-setting covering bound
  ``C(k, q)``.
* :func:`fractional_retrieval_ratio` — Eq. (11), ``C(eta)``.
* :func:`byzantine_lower_bound` — the transfer of the crash lower bound to
  Byzantine faults, improving e.g. ``B(3, 1) >= 5.23``.
* :func:`cow_path_ratio` and :func:`single_robot_ray_ratio` — the classic
  special cases (ratio 9 on the line; ``1 + 2 m^m/(m-1)^(m-1)`` on m rays).
* :func:`mu` / :func:`mu_from_ratio` — the half-ratio ``mu = (lambda - 1)/2``
  used throughout the proofs.
* :func:`optimal_geometric_base` — the base ``alpha* = (q/(q-k))^(1/k)`` of
  the geometric strategy that attains the upper bound (appendix).

All functions operate in ``float`` arithmetic; the formulas involve only
powers and roots so double precision is ample for every table in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import math
from typing import Optional

from ..exceptions import InvalidProblemError
from .problem import SearchProblem

__all__ = [
    "rho_exponent",
    "power_term",
    "crash_line_ratio",
    "crash_ray_ratio",
    "orc_covering_ratio",
    "fractional_retrieval_ratio",
    "byzantine_lower_bound",
    "known_byzantine_bounds_isaac2016",
    "cow_path_ratio",
    "single_robot_ray_ratio",
    "mu",
    "mu_from_ratio",
    "ratio_from_mu",
    "optimal_geometric_base",
    "geometric_strategy_ratio",
    "delta_growth_factor",
    "bound_for_problem",
]


# ----------------------------------------------------------------------
# Elementary building blocks
# ----------------------------------------------------------------------
def power_term(rho: float) -> float:
    """Return ``rho^rho / (rho - 1)^(rho - 1)`` for ``rho > 1``.

    This is the expression that appears (with different parameterisations)
    in every bound of the paper.  At ``rho -> 1`` the denominator tends to
    ``0^0 = 1`` and the whole expression tends to 1; we handle that limit
    explicitly so callers can evaluate the boundary of the trivial regime.
    """
    if rho < 1.0:
        raise InvalidProblemError(f"power_term requires rho >= 1, got {rho}")
    if rho == 1.0:
        return 1.0
    return math.exp(rho * math.log(rho) - (rho - 1.0) * math.log(rho - 1.0))


def rho_exponent(m: int, k: int, f: int) -> float:
    """Return ``rho = m (f + 1) / k`` (Theorem 6 notation)."""
    _validate_mkf(m, k, f)
    return m * (f + 1) / k


def mu(ratio: float) -> float:
    """Return ``mu = (lambda - 1) / 2`` for a competitive ratio ``lambda``.

    ``mu`` is the quantity the proofs work with: a robot lambda-covers the
    pair ``(x, -x)`` iff the sum of its turning points so far is at most
    ``mu * x`` (Eq. 2).
    """
    return (ratio - 1.0) / 2.0


# Backwards-compatible aliases with more explicit names.
mu_from_ratio = mu


def ratio_from_mu(mu_value: float) -> float:
    """Inverse of :func:`mu`: return ``lambda = 2 mu + 1``."""
    return 2.0 * mu_value + 1.0


def _validate_mkf(m: int, k: int, f: int) -> None:
    if m < 1:
        raise InvalidProblemError(f"need at least one ray, got m={m}")
    if k < 1:
        raise InvalidProblemError(f"need at least one robot, got k={k}")
    if f < 0:
        raise InvalidProblemError(f"number of faulty robots must be >= 0, got f={f}")
    if f > k:
        raise InvalidProblemError(f"cannot have more faulty robots than robots (f={f}, k={k})")


# ----------------------------------------------------------------------
# Main theorems
# ----------------------------------------------------------------------
def crash_ray_ratio(m: int, k: int, f: int = 0) -> float:
    """Optimal competitive ratio ``A(m, k, f)`` for crash faults on m rays.

    Theorem 6 of the paper: with ``q = m (f + 1)`` and ``f < k < q``,

    .. math:: A(m, k, f) = 2 \\sqrt[k]{\\frac{q^q}{(q-k)^{q-k} k^k}} + 1 .

    Outside the interesting regime the function returns the paper's
    boundary values: ``1.0`` when ``k >= q`` (send ``f + 1`` robots down
    each ray) and ``math.inf`` when ``k == f`` (all robots faulty, the
    target can never be confirmed).

    Parameters
    ----------
    m:
        Number of rays (``m >= 1``; ``m = 2`` is the real line).
    k:
        Number of robots.
    f:
        Number of crash-faulty robots.

    Examples
    --------
    >>> round(crash_ray_ratio(2, 1, 0), 10)   # classic cow path
    9.0
    >>> round(crash_ray_ratio(2, 3, 1), 4)    # A(3, 1) on the line
    5.2308
    """
    _validate_mkf(m, k, f)
    q = m * (f + 1)
    if k == f:
        return math.inf
    if k >= q:
        return 1.0
    # Interesting regime: f < k < q.
    # A = 2 * (q^q / ((q-k)^(q-k) * k^k))^(1/k) + 1, computed in log space
    # to stay accurate for large parameters.
    log_term = q * math.log(q) - (q - k) * math.log(q - k) - k * math.log(k)
    return 2.0 * math.exp(log_term / k) + 1.0


def crash_line_ratio(k: int, f: int) -> float:
    """Optimal competitive ratio ``A(k, f)`` for crash faults on the line.

    Theorem 1, Eq. (1): with ``rho = 2 (f + 1) / k`` and ``1 < rho <= 2``,

    .. math:: A(k, f) = 2 \\frac{\\rho^\\rho}{(\\rho-1)^{\\rho-1}} + 1 .

    Equivalent to ``crash_ray_ratio(2, k, f)``; both forms are provided and
    tested against each other.
    """
    _validate_mkf(2, k, f)
    if k == f:
        return math.inf
    if k >= 2 * (f + 1):
        return 1.0
    rho = 2 * (f + 1) / k
    return 2.0 * power_term(rho) + 1.0


def orc_covering_ratio(k: int, q: int) -> float:
    """Lower bound ``C(k, q)`` for q-fold covering in the ORC setting.

    Eq. (10): a ``q``-fold ``lambda``-covering of ``[1, inf)`` by ``k``
    robots in the one-ray-cover-with-returns setting requires

    .. math:: \\lambda \\ge 2 \\sqrt[k]{\\frac{q^q}{(q-k)^{q-k} k^k}} + 1 .

    The bound is tight (it is matched by the strategy that proves the upper
    bound of Theorem 6).  For ``k >= q`` covering with ratio 1 is possible,
    so the function returns 1.
    """
    if k < 1 or q < 1:
        raise InvalidProblemError(f"k and q must be positive, got k={k}, q={q}")
    if k >= q:
        return 1.0
    log_term = q * math.log(q) - (q - k) * math.log(q - k) - k * math.log(k)
    return 2.0 * math.exp(log_term / k) + 1.0


def fractional_retrieval_ratio(eta: float) -> float:
    """Competitive ratio ``C(eta)`` of fractional one-ray retrieval.

    Eq. (11): robots of total weight 1 must cover the target with total
    weight ``eta >= 1``; for ``eta > 1`` the optimal worst-case ratio is

    .. math:: C(\\eta) = 2 \\frac{\\eta^\\eta}{(\\eta-1)^{\\eta-1}} + 1 .

    The degenerate case ``eta = 1`` is trivial — every robot walks straight
    out and the target is covered with the full weight at time ``x`` — so
    the function returns 1 there (the formula itself has a removable limit
    of 3 at ``eta -> 1+``, mirroring the ``k >= q`` discontinuity of
    Theorem 6).
    """
    if eta < 1.0:
        raise InvalidProblemError(f"eta must be at least 1, got {eta}")
    if eta == 1.0:
        return 1.0
    return 2.0 * power_term(eta) + 1.0


def byzantine_lower_bound(k: int, f: int) -> float:
    """Lower bound for Byzantine-faulty robots on the line, ``B(k, f)``.

    A crash-type lower bound is automatically a Byzantine-type lower bound
    (a Byzantine adversary can always choose to behave like a crash
    adversary), so Theorem 1 yields ``B(k, f) >= A(k, f)``.  The paper
    highlights ``B(3, 1) >= (8/3) * 4^(1/3) + 1 ~= 5.23``, improving the
    previous bound of 3.93 from Czyzowitz et al. (ISAAC 2016).
    """
    return crash_line_ratio(k, f)


def known_byzantine_bounds_isaac2016() -> dict:
    """Previously known Byzantine lower bounds quoted by the paper.

    The paper cites ``B(3, 1) >= 3.93`` from Czyzowitz et al., ISAAC 2016,
    as the state of the art before this work.  The dictionary maps
    ``(k, f)`` to the prior bound; only the pair explicitly quoted in the
    paper is included, benchmarks report the improvement factor against it.
    """
    return {(3, 1): 3.93}


# ----------------------------------------------------------------------
# Classic special cases
# ----------------------------------------------------------------------
def cow_path_ratio() -> float:
    """The classic cow-path (linear search) competitive ratio: exactly 9.

    This is ``A(2 rays, 1 robot, 0 faults)`` and also the value proved by
    Beck & Newman (1970) and Baeza-Yates, Culberson & Rawlins (1988).
    """
    return 9.0


def single_robot_ray_ratio(m: int) -> float:
    """Optimal ratio for one fault-free robot searching m rays.

    Baeza-Yates, Culberson & Rawlins:  ``1 + 2 m^m / (m-1)^(m-1)``.
    For ``m = 2`` this is the cow-path value 9.  For ``m = 1`` the robot
    walks straight to the target, ratio 1.
    """
    if m < 1:
        raise InvalidProblemError(f"need at least one ray, got m={m}")
    if m == 1:
        return 1.0
    return 1.0 + 2.0 * math.exp(m * math.log(m) - (m - 1) * math.log(m - 1))


# ----------------------------------------------------------------------
# Strategy-side quantities (upper-bound construction, appendix)
# ----------------------------------------------------------------------
def optimal_geometric_base(m: int, k: int, f: int = 0) -> float:
    """Optimal base ``alpha*`` of the round-robin geometric strategy.

    The upper-bound strategy (appendix of the paper; Czyzowitz et al. for
    the line) lets the robots process a doubly-infinite sequence of
    excursions with radii ``alpha^n`` in round-robin order.  Its ratio is
    ``1 + 2 alpha^q / (alpha^k - 1)`` (see
    :func:`geometric_strategy_ratio`), minimised at

    .. math:: \\alpha^* = \\left(\\frac{q}{q - k}\\right)^{1/k},
              \\qquad q = m (f + 1),

    at which point the ratio equals the Theorem 6 value exactly.
    """
    _validate_mkf(m, k, f)
    q = m * (f + 1)
    if k >= q:
        raise InvalidProblemError(
            f"geometric strategy is only defined for k < m(f+1); got k={k}, q={q}"
        )
    return (q / (q - k)) ** (1.0 / k)


def geometric_strategy_ratio(alpha: float, m: int, k: int, f: int = 0) -> float:
    """Worst-case ratio of the round-robin geometric strategy with base ``alpha``.

    For any ``alpha > 1`` the strategy guarantees competitive ratio

    .. math:: 1 + \\frac{2\\,\\alpha^{q}}{\\alpha^{k} - 1}, \\qquad q = m(f+1).

    The minimum over ``alpha`` is attained at
    :func:`optimal_geometric_base` and equals :func:`crash_ray_ratio`.
    This analytic form is used by the ablation benches (E10) to sweep the
    base around the optimum.
    """
    _validate_mkf(m, k, f)
    if alpha <= 1.0:
        raise InvalidProblemError(f"geometric base must exceed 1, got alpha={alpha}")
    q = m * (f + 1)
    return 1.0 + 2.0 * alpha**q / (alpha**k - 1.0)


def delta_growth_factor(mu_value: float, k: int, s: int) -> float:
    """The growth factor ``delta`` of Lemma 5.

    .. math:: \\delta = \\frac{(k+s)^{k+s}}{s^s k^k \\mu^k}

    When ``mu < ((k+s)^(k+s) / (s^s k^k))^(1/k)`` this exceeds 1, which is
    what forces the potential function of the lower-bound proof to grow
    without bound.
    """
    if k < 1 or s < 1:
        raise InvalidProblemError(f"k and s must be positive, got k={k}, s={s}")
    if mu_value <= 0:
        raise InvalidProblemError(f"mu must be positive, got {mu_value}")
    log_delta = (
        (k + s) * math.log(k + s)
        - s * math.log(s)
        - k * math.log(k)
        - k * math.log(mu_value)
    )
    return math.exp(log_delta)


def bound_for_problem(problem: SearchProblem) -> float:
    """Return the tight competitive-ratio bound for a :class:`SearchProblem`.

    Dispatches on the number of rays and the regime; Byzantine instances
    return the crash bound, which is the best lower bound established by
    the paper (upper bounds for Byzantine faults are outside its scope).
    """
    return crash_ray_ratio(problem.num_rays, problem.num_robots, problem.num_faulty)

"""Executable versions of the paper's Lemma 4 and Lemma 5.

The lower-bound proofs hinge on a single elementary inequality about the
polynomial ``x^s (mu* - x)^k``:

* **Lemma 4** — for ``mu* > 0`` the polynomial is maximised over
  ``0 < x < mu*`` at ``x = s mu* / (k + s)``.
* **Lemma 5** — consequently, for every ``0 < x < mu*``,

  .. math::

     \\frac{\\mu^{*s}}{x^s (\\mu^* - x)^k}
        \\;\\ge\\; \\frac{(k+s)^{k+s}}{s^s k^k \\mu^{*k}}
        \\;\\ge\\; \\delta := \\frac{(k+s)^{k+s}}{s^s k^k \\mu^{k}} \\; > 1

  whenever ``mu < ((k+s)^(k+s) / (s^s k^k))^(1/k)``.

These two facts drive the potential-function argument of Theorem 3 and of
Eq. (10): every time a new assigned interval is appended to the prefix, the
potential is multiplied by at least ``delta > 1``, contradicting the uniform
upper bound on the potential.

The module provides both the closed-form quantities and brute-force numeric
verifiers used by the property-based test-suite and the E8 bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import InvalidProblemError
from ..reporting import decode_float, encode_float

__all__ = [
    "polynomial_value",
    "argmax_of_polynomial",
    "polynomial_maximum",
    "step_ratio",
    "step_ratio_lower_bound",
    "critical_mu",
    "delta",
    "verify_lemma4",
    "verify_lemma5",
    "Lemma4Report",
    "Lemma5Report",
]


def _check_ks(k: float, s: float) -> None:
    if k <= 0 or s <= 0:
        raise InvalidProblemError(f"k and s must be positive, got k={k}, s={s}")


def polynomial_value(x: float, mu_star: float, k: float, s: float) -> float:
    """Evaluate the Lemma 4 polynomial ``x^s (mu* - x)^k``.

    Defined for ``0 <= x <= mu*``; returns 0 at both endpoints.  ``k`` and
    ``s`` may be non-integral (the m-ray proof applies the lemma with
    ``s = q - k`` which is an integer, but the fractional relaxation of
    Eq. (11) uses real exponents).
    """
    _check_ks(k, s)
    if not 0.0 <= x <= mu_star:
        raise InvalidProblemError(
            f"x must lie in [0, mu*] = [0, {mu_star}], got {x}"
        )
    if x == 0.0 or x == mu_star:
        return 0.0
    return math.exp(s * math.log(x) + k * math.log(mu_star - x))


def argmax_of_polynomial(mu_star: float, k: float, s: float) -> float:
    """Lemma 4: the unique maximiser ``x* = s mu* / (k + s)`` in ``(0, mu*)``."""
    _check_ks(k, s)
    if mu_star <= 0:
        raise InvalidProblemError(f"mu* must be positive, got {mu_star}")
    return s * mu_star / (k + s)


def polynomial_maximum(mu_star: float, k: float, s: float) -> float:
    """Maximum value of ``x^s (mu* - x)^k`` over ``0 < x < mu*``.

    Substituting ``x* = s mu*/(k+s)`` gives
    ``s^s k^k mu*^(k+s) / (k+s)^(k+s)``.
    """
    x_star = argmax_of_polynomial(mu_star, k, s)
    return polynomial_value(x_star, mu_star, k, s)


def step_ratio(x: float, mu_star: float, k: float, s: float) -> float:
    """The potential-step ratio ``mu*^s / (x^s (mu* - x)^k)``.

    This is exactly ``f(P+) / f(P)`` in the proof of Theorem 3 when the new
    interval belongs to a robot whose load-to-frontier ratio is ``x`` and
    whose interval obeys constraint (5) with slack parameter ``mu*``.
    """
    value = polynomial_value(x, mu_star, k, s)
    if value == 0.0:
        return math.inf
    return math.exp(s * math.log(mu_star)) / value


def step_ratio_lower_bound(mu_star: float, k: float, s: float) -> float:
    """Lemma 5, first inequality: ``(k+s)^(k+s) / (s^s k^k mu*^k)``.

    This is the infimum of :func:`step_ratio` over ``x in (0, mu*)``.
    """
    _check_ks(k, s)
    if mu_star <= 0:
        raise InvalidProblemError(f"mu* must be positive, got {mu_star}")
    log_value = (
        (k + s) * math.log(k + s)
        - s * math.log(s)
        - k * math.log(k)
        - k * math.log(mu_star)
    )
    return math.exp(log_value)


def critical_mu(k: float, s: float) -> float:
    """The threshold ``mu_c = ((k+s)^(k+s) / (s^s k^k))^(1/k)``.

    For ``mu < mu_c`` Lemma 5 yields ``delta > 1`` and the lower-bound
    argument applies; ``lambda = 2 mu_c + 1`` is exactly the tight ratio of
    Theorems 1 and 6 (with ``s = q - k``).
    """
    _check_ks(k, s)
    log_value = (k + s) * math.log(k + s) - s * math.log(s) - k * math.log(k)
    return math.exp(log_value / k)


def delta(mu_value: float, k: float, s: float) -> float:
    """Lemma 5, second inequality: ``delta = (k+s)^(k+s) / (s^s k^k mu^k)``.

    ``delta > 1`` iff ``mu < critical_mu(k, s)``; this multiplicative gap is
    what the potential accumulates at every prefix-extension step.
    """
    return step_ratio_lower_bound(mu_value, k, s)


# ----------------------------------------------------------------------
# Brute-force verification (used by tests and the E8 bench)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Lemma4Report:
    """Result of numerically verifying Lemma 4 on a grid.

    Attributes
    ----------
    mu_star, k, s:
        Parameters the lemma was checked for.
    analytic_argmax:
        The closed-form maximiser ``s mu*/(k+s)``.
    grid_argmax:
        The best grid point found by brute force.
    analytic_maximum / grid_maximum:
        Corresponding polynomial values.
    holds:
        True when no grid point beats the analytic maximum (up to floating
        point slack).
    """

    mu_star: float
    k: float
    s: float
    analytic_argmax: float
    grid_argmax: float
    analytic_maximum: float
    grid_maximum: float
    holds: bool

    def to_dict(self) -> Dict[str, object]:
        """Strict-JSON form (non-finite floats become ``"inf"``-style strings)."""
        return {
            "mu_star": encode_float(self.mu_star),
            "k": encode_float(self.k),
            "s": encode_float(self.s),
            "analytic_argmax": encode_float(self.analytic_argmax),
            "grid_argmax": encode_float(self.grid_argmax),
            "analytic_maximum": encode_float(self.analytic_maximum),
            "grid_maximum": encode_float(self.grid_maximum),
            "holds": self.holds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Lemma4Report":
        """Inverse of :meth:`to_dict`; extra payload keys are ignored."""
        return cls(
            mu_star=float(decode_float(payload["mu_star"])),
            k=float(decode_float(payload["k"])),
            s=float(decode_float(payload["s"])),
            analytic_argmax=float(decode_float(payload["analytic_argmax"])),
            grid_argmax=float(decode_float(payload["grid_argmax"])),
            analytic_maximum=float(decode_float(payload["analytic_maximum"])),
            grid_maximum=float(decode_float(payload["grid_maximum"])),
            holds=bool(payload["holds"]),
        )


def verify_lemma4(
    mu_star: float,
    k: float,
    s: float,
    grid_points: int = 10_001,
    rel_tol: float = 1e-9,
) -> Lemma4Report:
    """Check Lemma 4 by brute force on a uniform grid of ``(0, mu*)``.

    Returns a :class:`Lemma4Report`; ``report.holds`` is True when the
    analytic maximum dominates every sampled value and the grid maximiser
    is close to the analytic one.
    """
    _check_ks(k, s)
    xs = np.linspace(0.0, mu_star, grid_points)[1:-1]
    values = np.exp(s * np.log(xs) + k * np.log(mu_star - xs))
    best_index = int(np.argmax(values))
    grid_argmax = float(xs[best_index])
    grid_maximum = float(values[best_index])
    analytic_argmax = argmax_of_polynomial(mu_star, k, s)
    analytic_maximum = polynomial_maximum(mu_star, k, s)
    holds = grid_maximum <= analytic_maximum * (1.0 + rel_tol)
    return Lemma4Report(
        mu_star=mu_star,
        k=k,
        s=s,
        analytic_argmax=analytic_argmax,
        grid_argmax=grid_argmax,
        analytic_maximum=analytic_maximum,
        grid_maximum=grid_maximum,
        holds=holds,
    )


@dataclass(frozen=True)
class Lemma5Report:
    """Result of numerically verifying Lemma 5 on a grid.

    ``min_step_ratio`` is the smallest sampled value of
    ``mu*^s / (x^s (mu*-x)^k)`` over ``x`` and over ``mu* <= mu``; the lemma
    asserts it is at least ``delta``.
    """

    mu: float
    k: float
    s: float
    delta: float
    min_step_ratio: float
    holds: bool

    def to_dict(self) -> Dict[str, object]:
        """Strict-JSON form (non-finite floats become ``"inf"``-style strings)."""
        return {
            "mu": encode_float(self.mu),
            "k": encode_float(self.k),
            "s": encode_float(self.s),
            "delta": encode_float(self.delta),
            "min_step_ratio": encode_float(self.min_step_ratio),
            "holds": self.holds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Lemma5Report":
        """Inverse of :meth:`to_dict`; extra payload keys are ignored."""
        return cls(
            mu=float(decode_float(payload["mu"])),
            k=float(decode_float(payload["k"])),
            s=float(decode_float(payload["s"])),
            delta=float(decode_float(payload["delta"])),
            min_step_ratio=float(decode_float(payload["min_step_ratio"])),
            holds=bool(payload["holds"]),
        )


def verify_lemma5(
    mu_value: float,
    k: float,
    s: float,
    grid_points: int = 2_001,
    mu_star_samples: int = 25,
    rel_tol: float = 1e-9,
) -> Lemma5Report:
    """Check Lemma 5 by sampling ``x`` and ``mu* <= mu`` on grids.

    The lemma states that for every ``mu* <= mu`` and ``0 < x < mu*`` the
    step ratio is at least ``delta = (k+s)^(k+s)/(s^s k^k mu^k)``.
    """
    _check_ks(k, s)
    if mu_value <= 0:
        raise InvalidProblemError(f"mu must be positive, got {mu_value}")
    delta_value = delta(mu_value, k, s)
    min_ratio = math.inf
    for mu_star in np.linspace(mu_value / mu_star_samples, mu_value, mu_star_samples):
        xs = np.linspace(0.0, mu_star, grid_points)[1:-1]
        values = np.exp(s * np.log(xs) + k * np.log(mu_star - xs))
        ratios = math.exp(s * math.log(mu_star)) / values
        min_ratio = min(min_ratio, float(np.min(ratios)))
    holds = min_ratio >= delta_value * (1.0 - rel_tol)
    return Lemma5Report(
        mu=mu_value,
        k=k,
        s=s,
        delta=delta_value,
        min_step_ratio=min_ratio,
        holds=holds,
    )

"""Machine-checkable lower-bound certificates.

The paper's theorems say: *no* strategy achieves a competitive ratio below
the bound.  A numerical library cannot quantify over all strategies, but it
can do the next best things, and this module packages both:

1. **Per-strategy refutation** (:func:`certify_line_strategy`,
   :func:`certify_orc_strategy`) — given a concrete strategy (turning-point
   or round-radius sequences) and a claimed ratio ``lambda`` *below* the
   bound, produce a :class:`Certificate` showing that the strategy fails:
   either a *coverage hole* (an explicit target the strategy does not cover
   ``s``-fold within the deadline — the adversary places the target there),
   or, if the finite-horizon cover happens to be valid, the *potential
   budget*: the Eq.-7/Eq.-15 potential grows by at least ``delta > 1`` per
   assigned interval while staying below its cap, so only finitely many
   intervals — and hence only a bounded covered range — are possible.

2. **Proof-mechanics validation** (:func:`validate_potential_argument`) —
   for a *valid* cover (ratio at or above the bound) check the two pillars
   the proof relies on: the potential respects its cap, and every observed
   step ratio respects the Lemma-5 floor.

The E1/E6 benches and several integration tests run these certificates over
the optimal strategies with ratios slightly below / above the tight bound.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..exceptions import CertificateError, CoverageHoleError
from ..reporting import decode_float, encode_float
from .bounds import crash_line_ratio, mu_from_ratio, orc_covering_ratio
from .covering import (
    AssignedInterval,
    CoverInterval,
    assign_exact_cover,
    find_hole,
    line_cover_intervals,
    orc_cover_intervals,
)
from .lemmas import delta as lemma5_delta
from .potential import PotentialTrace, trace_line_potential, trace_orc_potential

__all__ = [
    "CertificateKind",
    "Certificate",
    "certify_line_strategy",
    "certify_orc_strategy",
    "validate_potential_argument",
    "PotentialValidation",
]


class CertificateKind(str, enum.Enum):
    """How a claimed below-bound ratio was refuted for a concrete strategy."""

    #: An explicit target distance that is not covered ``fold`` times in time.
    COVERAGE_HOLE = "coverage-hole"
    #: The cover is locally valid but the potential budget bounds how far it
    #: can ever extend (the Lemma-5 growth factor exceeds 1).
    POTENTIAL_BUDGET = "potential-budget"


@dataclass(frozen=True)
class Certificate:
    """Evidence that a concrete strategy cannot achieve the claimed ratio.

    Attributes
    ----------
    kind:
        Which refutation applies (see :class:`CertificateKind`).
    claimed_ratio:
        The ratio ``lambda`` the strategy was claimed to achieve.
    tight_bound:
        The paper's tight bound for the parameters; the claim is below it.
    fold:
        Covering multiplicity the strategy had to deliver (``s`` on the
        line, ``q`` in the ORC setting).
    hole:
        Witness distance for a :attr:`CertificateKind.COVERAGE_HOLE`
        certificate (``None`` otherwise).
    delta:
        Lemma-5 growth factor (``> 1`` because the claim is below the
        bound).
    max_intervals:
        For a :attr:`CertificateKind.POTENTIAL_BUDGET` certificate, the
        maximum number of assigned intervals any valid cover could contain
        given the observed starting potential (``None`` for hole
        certificates).
    trace:
        The potential trace backing a budget certificate.
    """

    kind: CertificateKind
    claimed_ratio: float
    tight_bound: float
    fold: int
    hole: Optional[float] = None
    delta: Optional[float] = None
    max_intervals: Optional[float] = None
    trace: Optional[PotentialTrace] = None

    def to_dict(self) -> Dict[str, object]:
        """Strict-JSON form of the certificate.

        The potential trace is summarised as ``num_trace_steps`` rather than
        serialised in full (it can hold thousands of steps); every float goes
        through :func:`repro.reporting.encode_float`.
        """

        def _optional(value: Optional[float]) -> object:
            return None if value is None else encode_float(value)

        return {
            "certificate_kind": self.kind.value,
            "claimed_ratio": encode_float(self.claimed_ratio),
            "tight_bound": encode_float(self.tight_bound),
            "fold": self.fold,
            "hole": _optional(self.hole),
            "delta": _optional(self.delta),
            "max_intervals": _optional(self.max_intervals),
            "num_trace_steps": None if self.trace is None else len(self.trace.steps),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Certificate":
        """Inverse of :meth:`to_dict` (the trace itself is not round-tripped)."""

        def _optional(value: object) -> Optional[float]:
            return None if value is None else float(decode_float(value))

        return cls(
            kind=CertificateKind(payload["certificate_kind"]),
            claimed_ratio=float(decode_float(payload["claimed_ratio"])),
            tight_bound=float(decode_float(payload["tight_bound"])),
            fold=int(payload["fold"]),  # type: ignore[arg-type]
            hole=_optional(payload["hole"]),
            delta=_optional(payload["delta"]),
            max_intervals=_optional(payload["max_intervals"]),
            trace=None,
        )

    def summary(self) -> str:
        """One-line human-readable summary of the certificate."""
        if self.kind is CertificateKind.COVERAGE_HOLE:
            return (
                f"claimed ratio {self.claimed_ratio:.4f} < bound "
                f"{self.tight_bound:.4f}: target at distance {self.hole:.4f} "
                f"is not {self.fold}-fold covered in time"
            )
        return (
            f"claimed ratio {self.claimed_ratio:.4f} < bound "
            f"{self.tight_bound:.4f}: potential grows by >= {self.delta:.4f} "
            f"per interval, so at most {self.max_intervals:.1f} assigned "
            "intervals are possible"
        )


def _certify(
    intervals: List[CoverInterval],
    fold: int,
    num_robots: int,
    mu: float,
    claimed_ratio: float,
    tight_bound: float,
    horizon: float,
    lo: float,
    setting: str,
) -> Certificate:
    delta_value = lemma5_delta(
        mu, num_robots, fold if setting == "line" else fold - num_robots
    )
    hole = find_hole(intervals, fold, lo, horizon)
    if hole is not None:
        return Certificate(
            kind=CertificateKind.COVERAGE_HOLE,
            claimed_ratio=claimed_ratio,
            tight_bound=tight_bound,
            fold=fold,
            hole=hole,
            delta=delta_value,
        )
    # The finite-horizon cover is valid; fall back to the potential budget.
    assigned = assign_exact_cover(intervals, fold, lo, horizon)
    tracer = trace_line_potential if setting == "line" else trace_orc_potential
    trace = tracer(assigned, mu=mu, num_robots=num_robots, fold=fold, lo=lo)
    return Certificate(
        kind=CertificateKind.POTENTIAL_BUDGET,
        claimed_ratio=claimed_ratio,
        tight_bound=tight_bound,
        fold=fold,
        delta=delta_value,
        max_intervals=trace.max_steps_allowed(),
        trace=trace,
    )


def certify_line_strategy(
    turning_sequences: Sequence[Sequence[float]],
    claimed_ratio: float,
    num_faulty: int,
    horizon: float,
    lo: float = 1.0,
) -> Certificate:
    """Refute a below-bound claim for a concrete line strategy (Theorem 1 side).

    ``turning_sequences[r]`` is robot ``r``'s alternating turning-point
    sequence.  ``claimed_ratio`` must be strictly below the tight bound
    ``A(k, f)``; otherwise no refutation exists and
    :class:`~repro.exceptions.CertificateError` is raised.
    """
    num_robots = len(turning_sequences)
    fold = 2 * (num_faulty + 1) - num_robots
    if fold < 1:
        raise CertificateError(
            "with k >= 2(f+1) the ratio 1 is achievable; nothing to refute"
        )
    tight = crash_line_ratio(num_robots, num_faulty)
    if claimed_ratio >= tight:
        raise CertificateError(
            f"claimed ratio {claimed_ratio} is not below the tight bound {tight}; "
            "no lower-bound certificate exists"
        )
    mu = mu_from_ratio(claimed_ratio)
    intervals = line_cover_intervals(turning_sequences, mu)
    return _certify(
        intervals,
        fold=fold,
        num_robots=num_robots,
        mu=mu,
        claimed_ratio=claimed_ratio,
        tight_bound=tight,
        horizon=horizon,
        lo=lo,
        setting="line",
    )


def certify_orc_strategy(
    radii_sequences: Sequence[Sequence[float]],
    claimed_ratio: float,
    fold: int,
    horizon: float,
    lo: float = 1.0,
) -> Certificate:
    """Refute a below-bound claim for a concrete ORC covering strategy (Eq. 10 side).

    ``radii_sequences[r]`` lists robot ``r``'s round radii; ``fold`` is the
    required covering multiplicity ``q``.
    """
    num_robots = len(radii_sequences)
    if fold <= num_robots:
        raise CertificateError(
            "with q <= k the covering ratio 1 is achievable; nothing to refute"
        )
    tight = orc_covering_ratio(num_robots, fold)
    if claimed_ratio >= tight:
        raise CertificateError(
            f"claimed ratio {claimed_ratio} is not below the tight bound {tight}; "
            "no lower-bound certificate exists"
        )
    mu = mu_from_ratio(claimed_ratio)
    intervals = orc_cover_intervals(radii_sequences, mu)
    return _certify(
        intervals,
        fold=fold,
        num_robots=num_robots,
        mu=mu,
        claimed_ratio=claimed_ratio,
        tight_bound=tight,
        horizon=horizon,
        lo=lo,
        setting="orc",
    )


@dataclass(frozen=True)
class PotentialValidation:
    """Result of checking the proof mechanics on a *valid* cover.

    ``cap_respected`` and ``steps_above_floor`` are the two pillars of the
    potential argument; ``num_steps`` is how many prefix extensions were
    examined.
    """

    cap_respected: bool
    steps_above_floor: bool
    num_steps: int
    min_step_ratio: float
    trace: PotentialTrace

    @property
    def holds(self) -> bool:
        """True when both pillars of the argument were observed to hold."""
        return self.cap_respected and self.steps_above_floor


def validate_potential_argument(
    turning_sequences: Sequence[Sequence[float]],
    ratio: float,
    num_faulty: int,
    horizon: float,
    lo: float = 1.0,
) -> PotentialValidation:
    """Check Eq. 8 and Lemma 5 on a concrete *valid* line cover.

    Intended for ratios at or above the tight bound, where the strategy
    really does cover ``[lo, horizon]`` ``s``-fold; raises
    :class:`~repro.exceptions.CoverageHoleError` if it does not.
    """
    num_robots = len(turning_sequences)
    fold = 2 * (num_faulty + 1) - num_robots
    if fold < 1:
        raise CertificateError("with k >= 2(f+1) the covering requirement is vacuous")
    mu = mu_from_ratio(ratio)
    intervals = line_cover_intervals(turning_sequences, mu)
    hole = find_hole(intervals, fold, lo, horizon)
    if hole is not None:
        raise CoverageHoleError(
            f"strategy does not {fold}-fold cover [{lo}, {horizon}]: hole at {hole}"
        )
    assigned = assign_exact_cover(intervals, fold, lo, horizon)
    trace = trace_line_potential(assigned, mu=mu, num_robots=num_robots, fold=fold, lo=lo)
    return PotentialValidation(
        cap_respected=trace.cap_respected,
        steps_above_floor=trace.all_steps_above_floor,
        num_steps=len(trace.steps),
        min_step_ratio=trace.min_step_ratio,
        trace=trace,
    )

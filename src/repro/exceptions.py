"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch library-specific failures without also catching built-in
errors.  The hierarchy mirrors the main subsystems:

* configuration / parameter problems → :class:`InvalidProblemError`,
  :class:`InvalidStrategyError`
* infeasible searches (all robots faulty, no strategy can succeed) →
  :class:`InfeasibleProblemError`
* simulation failures (a target is never detected by a given strategy) →
  :class:`TargetNotDetectedError`, :class:`CoverageHoleError`
* certificate construction failures → :class:`CertificateError`
* scenario-kind registry drift (a spec kind without an executor, or an
  executor for an unregistered kind) → :class:`RegistryError`
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class InvalidProblemError(ReproError, ValueError):
    """Raised when search-problem parameters are malformed.

    Examples include a negative number of robots, more faults than robots,
    or fewer than one ray.
    """


class InfeasibleProblemError(ReproError):
    """Raised when the search problem admits no finite-ratio strategy.

    This happens exactly when every robot is faulty (``k == f``): no set of
    trajectories can ever confirm the target location (Theorem 1 discussion).
    """


class InvalidStrategyError(ReproError, ValueError):
    """Raised when a strategy description violates its structural rules.

    Typical causes: non-positive turning points, a turning-point sequence
    that is not monotone after normalisation, excursions on rays that do not
    exist in the domain, or a per-robot schedule of the wrong length.
    """


class TargetNotDetectedError(ReproError):
    """Raised when a strategy never accumulates ``f + 1`` visits at a target.

    The competitive ratio of such a strategy is infinite; callers that prefer
    ``math.inf`` over an exception can use the ``allow_undetected`` switches
    on the evaluation functions.
    """


class CoverageHoleError(ReproError):
    """Raised when a covering strategy leaves part of the required set uncovered."""


class CertificateError(ReproError):
    """Raised when a lower-bound certificate cannot be constructed.

    This is *expected* when the claimed ratio is actually achievable: the
    potential-function argument only yields a contradiction below the bound.
    """


class RegistryError(ReproError):
    """Raised when the scenario-kind registry and the executor registry drift.

    Registering a spec kind without an executor (or an executor for an
    unregistered kind) is a programming error; it is detected at import time
    by :func:`repro.service.execute.check_registry_parity` and again when a
    request names a registered-but-unhandled kind, so it surfaces as a
    structured 400 instead of a background ``TypeError``.
    """

"""E5 — Parallel m-ray search with fault-free robots (f = 0).

The question left open by Baeza-Yates–Culberson–Rawlins, Kao–Ma–Sipser–Yin
and Bernstein–Finkelstein–Zilberstein, resolved by Theorem 6: the cyclic
geometric strategies are globally optimal for the time measure.  The table
compares the cyclic class (Bernstein et al.) with the round-robin geometric
construction; both must match the bound.
"""

from __future__ import annotations

from repro.analysis.tables import e5_parallel_rays


def test_e5_parallel_rays(benchmark, experiment_runner):
    # The cyclic realisation converges to its asymptotic worst case more
    # slowly than the round-robin one (its worst targets sit deeper), so
    # this experiment uses a larger horizon than the others.
    table = experiment_runner(benchmark, e5_parallel_rays, horizon=3e4, max_rays=6)
    for row in table.rows:
        paper, cyclic, geometric = row[2], row[3], row[4]
        assert cyclic <= paper + 1e-6
        assert geometric <= paper + 1e-6
        # Both constructions attain the bound within 2%.
        assert abs(cyclic - paper) / paper < 0.02
        assert abs(geometric - paper) / paper < 0.02

"""E6 — ORC q-fold covering (Eq. 10).

The covering relaxation behind the Theorem 6 lower bound: C(k, q) closed
form versus the measured geometric covering schedule.
"""

from __future__ import annotations

from repro.analysis.tables import e6_orc_covering


def test_e6_orc_covering(benchmark, experiment_runner):
    table = experiment_runner(benchmark, e6_orc_covering, horizon=5e3)
    for row in table.rows:
        paper, measured, gap = row[2], row[3], row[4]
        assert measured <= paper + 1e-6
        assert 0.0 <= gap < 0.02

"""E11 — Section 3 connections: contract algorithms and hybrid algorithms.

Two identities tie the paper's Theorem 6 (f = 0) to older scheduling
problems:

* ``A(m, k, 0) = 1 + 2 * acc*(m - k, k)`` — contract-scheduling acceleration
  ratio (Bernstein, Finkelstein & Zilberstein);
* ``H(m, k) = 1 + (A(m, k, 0) - 1) / 2`` — hybrid on-line algorithms
  (Kao, Ma, Sipser & Yin), i.e. ray search without the return trips.
"""

from __future__ import annotations

from repro.analysis.tables import e11_connections


def test_e11_connections(benchmark, experiment_runner):
    table = experiment_runner(benchmark, e11_connections, horizon=2e4)
    for row in table.rows:
        search, via_contract, acc_measured, hybrid_formula, hybrid_measured = (
            row[2],
            row[3],
            row[4],
            row[5],
            row[6],
        )
        # The contract identity is exact.
        assert abs(search - via_contract) < 1e-9
        # Measured schedules attain their formulas from below.
        assert acc_measured <= (search - 1.0) / 2.0 + 1e-6
        assert hybrid_measured <= hybrid_formula + 1e-6
        assert abs(hybrid_measured - hybrid_formula) / hybrid_formula < 0.02

"""Perf — the experiment compiler and grid execution.

Two measurements on a mixed-kind grid (every related workload plus the
closed-form bounds, 48 cells):

1. **Compile** — crossing generators × strategies, seed spawning and
   content hashing must stay negligible next to evaluation (the compiler
   runs on every `repro experiment run` and every `POST /experiments`);
2. **Cold vs warm run** — the compiled plan through the scheduler: the
   warm re-run of the identical plan must evaluate nothing and beat the
   cold run by the same >= 5x floor the batch scheduler guarantees.

The measured times land in ``extra_info`` so the bench JSON tracks the
experiment layer over time (PERFORMANCE.md, "Experiment grids").
"""

from __future__ import annotations

import time

from repro.experiment import Experiment
from repro.service.cache import ResultCache
from repro.service.scheduler import ScenarioScheduler

WORKERS = 4


def _build_experiment() -> Experiment:
    return (
        Experiment("bench-grid", seed=2018)
        .add_generator(
            "problems",
            [
                {"num_rays": m, "num_robots": k, "num_faulty": 0,
                 "num_problems": m, "num_processors": k,
                 "num_algorithms": m + k, "num_areas": k,
                 "fold": m + k, "eta": 1.0 + m / 2.0}
                for m in (2, 3, 4)
                for k in (1, 2)
            ],
        )
        .add_strategy("bounds", "bounds")
        .add_strategy("simulate", "simulate", horizon=100.0)
        .add_strategy("contract", "contract", horizon=100.0)
        .add_strategy("hybrid", "hybrid", horizon=100.0)
        .add_strategy("orc", "orc", horizon=100.0)
        .add_strategy("fractional", "fractional", horizon=100.0)
        .add_strategy("lemmas", "lemmas", grid_points=101, mu_star_samples=5)
        # Fixed strategy fields win over row fields, so the certificate
        # stays in the refutable line regime (f < k <= 2f + 1) for every row.
        .add_strategy(
            "certificate", "certificate",
            num_robots=3, num_faulty=1, claim_fraction=0.95, horizon=200.0,
        )
        .add_metric("bound", "ratio")
        .add_metric("measured", "measured_ratio")
        .add_metric("holds", "holds")
    )


def test_perf_experiment_grid(benchmark):
    experiment = _build_experiment()

    start = time.perf_counter()
    plan = experiment.compile()
    compile_seconds = time.perf_counter() - start
    assert len(plan.cells) == 48
    content_hash = plan.content_hash()
    assert experiment.compile().content_hash() == content_hash

    scheduler = ScenarioScheduler(cache=ResultCache(max_entries=4096))

    start = time.perf_counter()
    cold = plan.run(scheduler=scheduler, max_workers=WORKERS)
    cold_seconds = time.perf_counter() - start
    assert cold.stats["evaluated"] > 0

    start = time.perf_counter()
    warm = experiment.compile().run(scheduler=scheduler, max_workers=WORKERS)
    warm_seconds = time.perf_counter() - start
    assert warm.stats["evaluated"] == 0
    assert warm.rows == cold.rows
    warm_speedup = cold_seconds / warm_seconds

    benchmark.extra_info["experiment"] = "PERF-EXPERIMENT"
    benchmark.extra_info["num_cells"] = len(plan.cells)
    benchmark.extra_info["num_unique"] = cold.stats["num_unique"]
    benchmark.extra_info["compile_seconds"] = round(compile_seconds, 5)
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["warm_speedup"] = round(warm_speedup, 1)
    print(
        f"\nexperiment grid @ {len(plan.cells)} cells "
        f"({cold.stats['num_unique']} unique): "
        f"compile {compile_seconds * 1e3:.1f} ms, "
        f"cold {cold_seconds * 1e3:.0f} ms "
        f"({cold.stats['evaluated']} evals), "
        f"warm {warm_seconds * 1e3:.0f} ms, {warm_speedup:.0f}x"
    )

    benchmark.pedantic(
        lambda: experiment.compile().run(scheduler=scheduler, max_workers=WORKERS),
        rounds=3,
        iterations=1,
    )
    assert warm_speedup >= 5.0, (
        f"warm experiment only {warm_speedup:.1f}x faster than cold"
    )

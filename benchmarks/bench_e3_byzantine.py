"""E3 — Byzantine lower bounds via the crash transfer.

The paper's headline: B(3, 1) >= 5.23, improving the previous 3.93 from
Czyzowitz et al. (ISAAC 2016).
"""

from __future__ import annotations

from repro.analysis.tables import e3_byzantine_bounds


def test_e3_byzantine_bounds(benchmark, experiment_runner):
    table = experiment_runner(benchmark, e3_byzantine_bounds)
    headline = [row for row in table.rows if row[0] == 3 and row[1] == 1]
    assert len(headline) == 1
    new_bound, previous, improvement = headline[0][2], headline[0][3], headline[0][4]
    assert abs(new_bound - 5.2331) < 1e-3
    assert previous == 3.93
    assert improvement > 1.29

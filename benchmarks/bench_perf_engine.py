"""Perf — scalar oracle versus vectorized engine on the E1 sweep.

Times the adversary's exact best response for every ``(k, f)`` of the E1
Theorem-1 grid at horizon 1e5, with the defence-in-depth verification grid
added (2048 targets per ray), under both evaluation engines.  The measured
times and the speedup land in the benchmark's ``extra_info`` so the BENCH
JSON tracks the vectorized engine's advantage over time; the test asserts
the >= 10x acceptance floor and that both engines agree to 1e-9.
"""

from __future__ import annotations

import time

from repro.core.problem import line_problem
from repro.simulation.competitive import evaluate_trajectories, grid_targets
from repro.strategies.geometric import RoundRobinGeometricStrategy

HORIZON = 1e5
POINTS_PER_RAY = 2048
MAX_FAULTY = 3


def _e1_cases():
    """One evaluation workload per (k, f) of the E1 interesting regime."""
    cases = []
    for f in range(1, MAX_FAULTY + 1):
        for k in range(f + 1, 2 * (f + 1)):
            problem = line_problem(k, f)
            strategy = RoundRobinGeometricStrategy(problem)
            trajectories = strategy.trajectories(HORIZON)
            grid = grid_targets(2, 1.0, HORIZON, points_per_ray=POINTS_PER_RAY)
            cases.append((problem, trajectories, grid))
    return cases


def _sweep(cases, engine):
    return [
        evaluate_trajectories(
            trajectories, problem, HORIZON, extra_targets=grid, engine=engine
        ).ratio
        for problem, trajectories, grid in cases
    ]


def _time(cases, engine, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        _sweep(cases, engine)
        best = min(best, time.perf_counter() - start)
    return best


def test_perf_engine_e1_sweep(benchmark):
    cases = _e1_cases()
    # Warm both paths once: the compiled arrival arrays are built lazily and
    # cached on the trajectories, and both engines share them afterwards.
    scalar_ratios = _sweep(cases, "scalar")
    vectorized_ratios = _sweep(cases, "vectorized")
    for slow, fast in zip(scalar_ratios, vectorized_ratios):
        assert abs(slow - fast) <= 1e-9 * max(1.0, abs(slow))

    scalar_seconds = _time(cases, "scalar")
    vectorized_seconds = _time(cases, "vectorized")
    speedup = scalar_seconds / vectorized_seconds

    benchmark.extra_info["experiment"] = "PERF-ENGINE"
    benchmark.extra_info["horizon"] = HORIZON
    benchmark.extra_info["targets_per_ray"] = POINTS_PER_RAY
    benchmark.extra_info["rows"] = len(cases)
    benchmark.extra_info["scalar_seconds"] = round(scalar_seconds, 6)
    benchmark.extra_info["vectorized_seconds"] = round(vectorized_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\nE1 sweep @ horizon {HORIZON:g} with {POINTS_PER_RAY} grid targets/ray: "
        f"scalar {scalar_seconds * 1e3:.1f} ms, "
        f"vectorized {vectorized_seconds * 1e3:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )

    benchmark.pedantic(lambda: _sweep(cases, "vectorized"), rounds=3, iterations=1)
    assert speedup >= 10.0, (
        f"vectorized engine only {speedup:.1f}x faster than the scalar oracle"
    )

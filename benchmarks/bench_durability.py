"""Perf — durability: journal overhead, recovery replay and peer fetches.

Three measurements behind the PERFORMANCE.md "Durability" section:

1. **Journal write overhead** — the acceptance grid (100 unique specs)
   run through a plain in-memory scheduler vs one journaling every shard
   to SQLite and spilling to a disk cache.  The per-shard delta is the
   price of crash-safety; the results must stay bit-identical.
2. **Recovery replay** — a fresh scheduler pointed at the finished
   journal + disk cache: ``recover_jobs`` must rehydrate the job without
   a single engine evaluation, and the journal replay (``load_jobs``)
   is the benchmarked hot loop.
3. **Peer fetch vs recompute** — one ``GET /cache/<key>`` round-trip to
   an in-process server against recomputing a seeded Monte-Carlo spec
   locally.  The fetch must win, otherwise ``--cache-peers`` would be a
   pessimisation.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

from repro.service.cache import ResultCache
from repro.service.execute import execute_spec
from repro.service.journal import JobJournal
from repro.service.remote import CachePeer
from repro.service.scheduler import ScenarioScheduler
from repro.service.server import create_server
from repro.service.spec import ENGINE_VERSION, MonteCarloFaultsSpec, SimulateSpec

TRIPLES = [(2, 1, 0), (2, 3, 1)]
HORIZONS = range(10, 60)
SHARD_SIZE = 10


def _acceptance_grid():
    return [
        SimulateSpec(num_rays=m, num_robots=k, num_faulty=f, horizon=float(horizon))
        for m, k, f in TRIPLES
        for horizon in HORIZONS
    ]


def _wait_for_journaled_done(path, job_id, timeout=30.0):
    # record_state("done") lands just after the job's done-event fires, so
    # poll the journal rather than racing the writer thread.
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        journal = JobJournal(path)
        try:
            records = {record.job_id: record for record in journal.load_jobs()}
        finally:
            journal.close()
        record = records.get(job_id)
        if record is not None and record.state == "done":
            return record
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached state=done in the journal")


def test_perf_durability_journal_and_recovery(benchmark):
    grid = _acceptance_grid()
    assert len(grid) == 100

    with tempfile.TemporaryDirectory(prefix="repro-bench-journal-") as tmp:
        journal_path = os.path.join(tmp, "journal.sqlite")
        cache_dir = os.path.join(tmp, "cache")

        plain = ScenarioScheduler(cache=ResultCache(max_entries=4096))
        start = time.perf_counter()
        plain_batch = plain.run_batch(grid, max_workers=1, shard_size=SHARD_SIZE)
        plain_seconds = time.perf_counter() - start
        assert plain_batch.evaluated == len(grid)

        durable = ScenarioScheduler(
            cache=ResultCache(max_entries=4096, disk_path=cache_dir),
            journal=JobJournal(journal_path),
        )
        start = time.perf_counter()
        job = durable.submit_job(
            list(grid), max_workers=1, shard_size=SHARD_SIZE, spill_results=False
        )
        assert job.wait(timeout=300.0)
        durable_seconds = time.perf_counter() - start
        durable_batch = job.result()
        assert durable_batch.evaluated == len(grid)
        assert list(durable_batch.results) == list(plain_batch.results)

        num_shards = len(grid) // SHARD_SIZE
        overhead_ms_per_shard = (
            max(0.0, durable_seconds - plain_seconds) * 1e3 / num_shards
        )

        record = _wait_for_journaled_done(journal_path, job.job_id)
        assert len(record.completed_keys) == len(grid)
        durable.journal.close()

        recovered = ScenarioScheduler(
            cache=ResultCache(max_entries=4096, disk_path=cache_dir),
            journal=JobJournal(journal_path),
        )
        start = time.perf_counter()
        summary = recovered.recover_jobs()
        recovery_seconds = time.perf_counter() - start
        assert summary == {"rehydrated": 1, "resumed": 0, "failed": 0, "skipped": 0}
        rehydrated = recovered.get_job(job.job_id)
        assert rehydrated is not None and rehydrated.wait(timeout=30.0)
        assert list(rehydrated.result().results) == list(plain_batch.results)
        recovered.journal.close()

        def replay():
            journal = JobJournal(journal_path)
            try:
                return journal.load_jobs()
            finally:
                journal.close()

        records = benchmark(replay)
        assert len(records) == 1 and records[0].state == "done"

        benchmark.extra_info["experiment"] = "PERF-DURABILITY"
        benchmark.extra_info["num_unique"] = len(grid)
        benchmark.extra_info["num_shards"] = num_shards
        benchmark.extra_info["plain_seconds"] = round(plain_seconds, 4)
        benchmark.extra_info["durable_seconds"] = round(durable_seconds, 4)
        benchmark.extra_info["journal_overhead_ms_per_shard"] = round(
            overhead_ms_per_shard, 3
        )
        benchmark.extra_info["recovery_seconds"] = round(recovery_seconds, 4)
        print(
            f"\ndurable batch @ {len(grid)} specs / {num_shards} shards: "
            f"plain {plain_seconds * 1e3:.0f} ms, "
            f"journaled+disk {durable_seconds * 1e3:.0f} ms "
            f"({overhead_ms_per_shard:.2f} ms/shard overhead)\n"
            f"recovery rehydrated {len(grid)} results in "
            f"{recovery_seconds * 1e3:.1f} ms without re-evaluating"
        )


def test_perf_peer_fetch_vs_recompute(benchmark):
    spec = MonteCarloFaultsSpec(
        num_rays=2,
        num_robots=3,
        num_faulty=1,
        num_trials=20000,
        seed=11,
        horizon=100.0,
    )
    server = create_server(host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        local_payload, _cached = server.scheduler.evaluate(spec)
        key = spec.cache_key(ENGINE_VERSION)
        peer = CachePeer(server.url)

        fetched = benchmark(peer.fetch, key)
        assert fetched == local_payload

        rounds = 25
        start = time.perf_counter()
        for _ in range(rounds):
            assert peer.fetch(key) == local_payload
        fetch_seconds = (time.perf_counter() - start) / rounds

        start = time.perf_counter()
        for _ in range(3):
            recomputed = execute_spec(spec)
        recompute_seconds = (time.perf_counter() - start) / 3
        assert recomputed == local_payload

        speedup = recompute_seconds / fetch_seconds
        benchmark.extra_info["experiment"] = "PERF-PEER-CACHE"
        benchmark.extra_info["num_trials"] = spec.num_trials
        benchmark.extra_info["peer_fetch_ms"] = round(fetch_seconds * 1e3, 3)
        benchmark.extra_info["recompute_ms"] = round(recompute_seconds * 1e3, 3)
        benchmark.extra_info["peer_speedup"] = round(speedup, 1)
        print(
            f"\npeer fetch {fetch_seconds * 1e6:.0f} us vs recompute "
            f"{recompute_seconds * 1e3:.1f} ms "
            f"({spec.num_trials} trials): {speedup:.0f}x"
        )
        assert speedup > 1.0, (
            f"peer fetch ({fetch_seconds * 1e3:.2f} ms) slower than recomputing "
            f"({recompute_seconds * 1e3:.2f} ms) — --cache-peers is a pessimisation"
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

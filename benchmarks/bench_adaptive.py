"""Perf — adaptive (sequential) Monte-Carlo versus fixed-count, + streaming.

Two claims of the adaptive-precision pipeline, measured on seeded runs:

* **Trials saved at matched precision.**  For each grid cell, a fixed-count
  campaign's achieved standard error becomes the adaptive campaign's
  ``target_se`` with the same trial budget; sequential stopping must reach
  that target without exceeding the fixed trial count, and across the grid
  it must save a non-trivial fraction of the trials.
* **Time to first row.**  Streaming a batch job's rows via
  ``BatchJob.iter_rows`` must deliver the first result row well before the
  full batch completes — the latency gap is the whole point of the row
  sink.

The measured counts and timings land in ``extra_info`` so the BENCH JSON
tracks both advantages over time.
"""

from __future__ import annotations

import time

from repro.core.problem import ray_problem
from repro.faults.injection import simulate_random_faults
from repro.service.scheduler import ScenarioScheduler
from repro.service.spec import MonteCarloFaultsSpec
from repro.strategies.optimal import optimal_strategy

HORIZON = 200.0
FIXED_TRIALS = 2_048
CHUNK_TRIALS = 256
SEED = 20260808
GRID = [(2, 1, 0), (2, 3, 1), (3, 2, 0), (3, 4, 1)]

STREAM_SPECS = [
    MonteCarloFaultsSpec(
        num_rays=m, num_robots=k, num_faulty=f, num_trials=3_000,
        seed=seed, horizon=HORIZON,
    )
    for m, k, f in GRID
    for seed in range(6)
]


def test_perf_adaptive_precision(benchmark):
    # ------------------------------------------------------------------
    # Trials saved at matched standard error.
    # ------------------------------------------------------------------
    total_fixed = 0
    total_adaptive = 0
    per_cell = []
    for m, k, f in GRID:
        strategy = optimal_strategy(ray_problem(m, k, f))
        fixed = simulate_random_faults(
            strategy, horizon=HORIZON, num_trials=FIXED_TRIALS, seed=SEED
        )
        # Match the fixed run's achieved precision (a 5% tolerance absorbs
        # the sample-variance wobble between the two seed streams) with a
        # budget well above the fixed count, so hitting the target — not
        # the cap — is what stops the run.
        target_se = fixed.std_error * 1.05
        adaptive = simulate_random_faults(
            strategy,
            horizon=HORIZON,
            seed=SEED,
            target_se=target_se,
            max_trials=2 * FIXED_TRIALS,
            chunk_trials=CHUNK_TRIALS,
        )
        used = len(adaptive.trials)
        assert adaptive.converged is True, (
            f"({m},{k},{f}): adaptive never reached the fixed run's "
            f"SE {fixed.std_error:.4f} (+5%)"
        )
        assert used <= FIXED_TRIALS, (
            f"({m},{k},{f}): adaptive needed {used} trials to match the "
            f"precision a fixed run got from {FIXED_TRIALS}"
        )
        assert adaptive.std_error <= target_se, (
            f"({m},{k},{f}): matched-precision contract broken "
            f"({adaptive.std_error:.5f} > {target_se:.5f})"
        )
        total_fixed += FIXED_TRIALS
        total_adaptive += used
        per_cell.append(((m, k, f), used))
    saved_fraction = 1.0 - total_adaptive / total_fixed
    assert saved_fraction > 0.0, "adaptive stopping saved nothing on the grid"

    # ------------------------------------------------------------------
    # Time to first streamed row versus full-batch latency.
    # ------------------------------------------------------------------
    def first_row_and_full():
        scheduler = ScenarioScheduler()  # fresh cache: nothing precomputed
        job = scheduler.submit_job(STREAM_SPECS, max_workers=1, shard_size=1)
        start = time.perf_counter()
        next(iter(job.iter_rows()))
        first_row_seconds = time.perf_counter() - start
        job.result()
        full_seconds = time.perf_counter() - start
        return first_row_seconds, full_seconds

    first_row_seconds, full_seconds = first_row_and_full()
    assert first_row_seconds < full_seconds, (
        "first streamed row must beat full-batch completion"
    )

    benchmark.extra_info["experiment"] = "PERF-ADAPTIVE-MC"
    benchmark.extra_info["seed"] = SEED
    benchmark.extra_info["fixed_trials_per_cell"] = FIXED_TRIALS
    benchmark.extra_info["adaptive_trials_total"] = total_adaptive
    benchmark.extra_info["fixed_trials_total"] = total_fixed
    benchmark.extra_info["trials_saved_fraction"] = round(saved_fraction, 4)
    benchmark.extra_info["stream_scenarios"] = len(STREAM_SPECS)
    benchmark.extra_info["first_row_seconds"] = round(first_row_seconds, 6)
    benchmark.extra_info["full_batch_seconds"] = round(full_seconds, 6)
    benchmark.extra_info["first_row_speedup"] = round(
        full_seconds / max(first_row_seconds, 1e-9), 2
    )
    print(
        f"\nadaptive MC @ matched SE over {len(GRID)} cells: "
        f"{total_adaptive}/{total_fixed} trials "
        f"({saved_fraction:.1%} saved; per cell "
        f"{', '.join(f'{cell}={used}' for cell, used in per_cell)})\n"
        f"streaming {len(STREAM_SPECS)} scenarios: first row in "
        f"{first_row_seconds * 1e3:.1f} ms vs full batch "
        f"{full_seconds * 1e3:.1f} ms "
        f"({full_seconds / max(first_row_seconds, 1e-9):.1f}x earlier)"
    )

    benchmark.pedantic(
        lambda: simulate_random_faults(
            optimal_strategy(ray_problem(2, 3, 1)),
            horizon=HORIZON,
            seed=SEED,
            target_se=0.1,
            max_trials=FIXED_TRIALS,
            chunk_trials=CHUNK_TRIALS,
        ),
        rounds=3,
        iterations=1,
    )

"""Perf — scalar Monte-Carlo trial loops versus the batched engine.

Times both stochastic workloads under both engines on identical seeded
draws:

* random crash-fault injection (pre-sampled trial batch, engine evaluation
  only — sampling is shared by both paths);
* the randomized-offset ray search (the scalar path materialises one
  trajectory per offset, which *is* its trial loop; the batched path
  evaluates the closed-form schedule).

The measured times and speedups land in ``extra_info`` so the BENCH JSON
tracks the Monte-Carlo engine's advantage over time; the test asserts the
>= 10x acceptance floor for both workloads, differential agreement to
1e-9, and — at 10^5 samples — that the batched estimator sits within 3
standard errors of the closed-form ``expected_randomized_ratio``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.problem import line_problem
from repro.simulation.competitive import grid_targets
from repro.simulation.monte_carlo import (
    as_generator,
    fault_detection_times,
    sample_fault_trials,
)
from repro.strategies.geometric import RoundRobinGeometricStrategy
from repro.strategies.randomized import (
    RandomizedSingleRobotRayStrategy,
    monte_carlo_ratio_report,
)

HORIZON = 1e3
FAULT_TRIALS = 20_000
OFFSET_TIMING_SAMPLES = 1_000
OFFSET_ACCEPTANCE_SAMPLES = 100_000
SEED = 20260726
RANDOMIZED_TARGETS = [(0, 17.3), (1, 42.0)]


def _time(callable_, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_perf_mc_engine(benchmark):
    # ------------------------------------------------------------------
    # Workload 1: random crash-fault injection.
    # ------------------------------------------------------------------
    strategy = RoundRobinGeometricStrategy(line_problem(3, 1))
    trajectories = strategy.materialise(HORIZON)
    targets = grid_targets(2, 1.0, HORIZON, points_per_ray=32)
    batch = sample_fault_trials(
        as_generator(SEED), FAULT_TRIALS, 3, 1, targets,
        crash_model="uniform", horizon=HORIZON,
    )

    # Warm both paths (compiled arrival arrays are built lazily and shared).
    scalar_times = fault_detection_times(trajectories, batch, engine="scalar")
    batched_times = fault_detection_times(trajectories, batch, engine="vectorized")
    finite = np.isfinite(scalar_times)
    assert np.array_equal(finite, np.isfinite(batched_times))
    assert np.allclose(scalar_times[finite], batched_times[finite], atol=1e-9, rtol=0)

    fault_scalar_seconds = _time(
        lambda: fault_detection_times(trajectories, batch, engine="scalar")
    )
    fault_batched_seconds = _time(
        lambda: fault_detection_times(trajectories, batch, engine="vectorized")
    )
    fault_speedup = fault_scalar_seconds / fault_batched_seconds

    # ------------------------------------------------------------------
    # Workload 2: randomized-offset ray search.
    # ------------------------------------------------------------------
    randomized = RandomizedSingleRobotRayStrategy(2)
    scalar_report = monte_carlo_ratio_report(
        randomized, RANDOMIZED_TARGETS,
        num_samples=OFFSET_TIMING_SAMPLES, seed=SEED, engine="scalar",
    )
    batched_report = monte_carlo_ratio_report(
        randomized, RANDOMIZED_TARGETS,
        num_samples=OFFSET_TIMING_SAMPLES, seed=SEED, engine="vectorized",
    )
    assert abs(scalar_report.estimate - batched_report.estimate) <= 1e-9

    offset_scalar_seconds = _time(
        lambda: monte_carlo_ratio_report(
            randomized, RANDOMIZED_TARGETS,
            num_samples=OFFSET_TIMING_SAMPLES, seed=SEED, engine="scalar",
        ),
        rounds=2,
    )
    offset_batched_seconds = _time(
        lambda: monte_carlo_ratio_report(
            randomized, RANDOMIZED_TARGETS,
            num_samples=OFFSET_TIMING_SAMPLES, seed=SEED, engine="vectorized",
        ),
        rounds=2,
    )
    offset_speedup = offset_scalar_seconds / offset_batched_seconds

    # Acceptance: at 10^5 samples the batched estimator reproduces the
    # closed form within 3 standard errors, on every target.
    acceptance = monte_carlo_ratio_report(
        randomized, RANDOMIZED_TARGETS,
        num_samples=OFFSET_ACCEPTANCE_SAMPLES, seed=SEED, engine="vectorized",
    )
    z = abs(acceptance.estimate - acceptance.closed_form) / acceptance.std_error
    assert acceptance.within_standard_errors(3.0), (
        f"estimate {acceptance.estimate} vs closed form {acceptance.closed_form} "
        f"({z:.2f} standard errors)"
    )

    benchmark.extra_info["experiment"] = "PERF-MC-ENGINE"
    benchmark.extra_info["seed"] = SEED
    benchmark.extra_info["fault_trials"] = FAULT_TRIALS
    benchmark.extra_info["fault_scalar_seconds"] = round(fault_scalar_seconds, 6)
    benchmark.extra_info["fault_batched_seconds"] = round(fault_batched_seconds, 6)
    benchmark.extra_info["fault_speedup"] = round(fault_speedup, 2)
    benchmark.extra_info["offset_timing_samples"] = OFFSET_TIMING_SAMPLES
    benchmark.extra_info["offset_scalar_seconds"] = round(offset_scalar_seconds, 6)
    benchmark.extra_info["offset_batched_seconds"] = round(offset_batched_seconds, 6)
    benchmark.extra_info["offset_speedup"] = round(offset_speedup, 2)
    benchmark.extra_info["acceptance_samples"] = OFFSET_ACCEPTANCE_SAMPLES
    benchmark.extra_info["mc_estimate"] = round(acceptance.estimate, 6)
    benchmark.extra_info["closed_form"] = round(acceptance.closed_form, 6)
    benchmark.extra_info["std_error"] = round(acceptance.std_error, 6)
    benchmark.extra_info["z_score"] = round(z, 3)
    print(
        f"\nMC fault workload @ {FAULT_TRIALS} trials: "
        f"scalar {fault_scalar_seconds * 1e3:.1f} ms, "
        f"batched {fault_batched_seconds * 1e3:.1f} ms, {fault_speedup:.1f}x\n"
        f"MC offset workload @ {OFFSET_TIMING_SAMPLES} samples: "
        f"scalar {offset_scalar_seconds * 1e3:.1f} ms, "
        f"batched {offset_batched_seconds * 1e3:.1f} ms, {offset_speedup:.1f}x\n"
        f"acceptance @ {OFFSET_ACCEPTANCE_SAMPLES} samples: "
        f"estimate {acceptance.estimate:.4f} vs closed form "
        f"{acceptance.closed_form:.4f} ({z:.2f} sigma)"
    )

    benchmark.pedantic(
        lambda: fault_detection_times(trajectories, batch, engine="vectorized"),
        rounds=3,
        iterations=1,
    )
    assert fault_speedup >= 10.0, (
        f"batched fault engine only {fault_speedup:.1f}x faster than the scalar loop"
    )
    assert offset_speedup >= 10.0, (
        f"batched offset engine only {offset_speedup:.1f}x faster than the scalar loop"
    )

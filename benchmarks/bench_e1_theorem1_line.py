"""E1 — Theorem 1: A(k, f) on the line.

Regenerates the table "closed form vs measured optimal strategy" for every
``(k, f)`` in the interesting regime with up to three faults, and checks the
shape of the result: the measured ratio approaches the paper's bound from
below for every row.
"""

from __future__ import annotations

from repro.analysis.tables import e1_theorem1_line


def test_e1_theorem1_line(benchmark, experiment_runner):
    table = experiment_runner(
        benchmark, e1_theorem1_line, horizon=5e3, max_faulty=3
    )
    for row in table.rows:
        paper, measured, gap = row[3], row[4], row[5]
        assert measured <= paper + 1e-6
        assert 0.0 <= gap < 0.02

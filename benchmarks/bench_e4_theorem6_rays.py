"""E4 — Theorem 6: A(m, k, f) on m rays.

Sweeps the interesting regime up to 4 rays / 6 robots / 2 faults and checks
that the measured optimal strategy tracks the closed form on every row.
"""

from __future__ import annotations

from repro.analysis.tables import e4_theorem6_rays


def test_e4_theorem6_rays(benchmark, experiment_runner):
    table = experiment_runner(
        benchmark, e4_theorem6_rays, horizon=5e3, max_rays=4, max_robots=6, max_faulty=2
    )
    assert len(table.rows) >= 10
    for row in table.rows:
        paper, measured, gap = row[3], row[4], row[5]
        assert measured <= paper + 1e-6
        assert 0.0 <= gap < 0.02

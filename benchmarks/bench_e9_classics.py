"""E9 — Classic special cases.

The cow path (ratio 9) and the single-robot m-ray search
(``1 + 2 m^m/(m-1)^(m-1)``), both of which Theorem 6 specialises to.
"""

from __future__ import annotations

from repro.analysis.tables import e9_classics


def test_e9_classics(benchmark, experiment_runner):
    table = experiment_runner(benchmark, e9_classics, horizon=1e4, max_rays=6)
    cow = table.rows[0]
    assert cow[2] == 9.0
    assert cow[3] <= 9.0 + 1e-9
    assert abs(cow[3] - 9.0) < 0.01
    for row in table.rows[1:]:
        paper, measured = row[2], row[3]
        assert measured <= paper + 1e-9
        assert abs(measured - paper) / paper < 0.01

"""Perf — distributed dispatch: remote shard round-trips and failover cost.

Two in-process ``repro serve`` workers back a distributed scheduler run of
the acceptance grid.  Three measurements:

1. **Serial baseline** — the same unique specs evaluated serially in
   process (no shards, no HTTP);
2. **Distributed cold batch** — shards round-robined across the two
   workers and the local pool; asserts the results are bit-identical to
   the serial baseline and derives the per-spec dispatch overhead;
3. **Failover batch** — one worker is killed between the health handshake
   and dispatch, so the shard it holds goes back on the pull queue; asserts
   bit-identity again and measures the recovery cost;
4. **Backpressure split** — one fast and one artificially slow worker pull
   from the same queue; records how many shards each ended up taking (the
   slow one must take fewer — placement follows throughput, not index
   arithmetic);
5. **Supervisor recovery** — a worker is stopped, marked dead, restarted
   on its old port, and the time for a 50 ms-interval
   :class:`~repro.service.remote.WorkerSupervisor` to re-probe it back to
   live is measured.

In-process workers share this machine's cores, so the distributed wall
clock measures *overhead*, not speedup — the win appears when workers are
separate machines.  The numbers land in ``extra_info`` so the bench JSON
tracks the dispatch layer over time (PERFORMANCE.md, "Distributed
dispatch").
"""

from __future__ import annotations

import threading
import time

from repro.service.remote import RemoteWorker, RemoteWorkerPool
from repro.service.scheduler import ScenarioScheduler
from repro.service.server import create_server
from repro.service.spec import SimulateSpec


class _SlowWorker(RemoteWorker):
    """A correct worker with added per-shard latency (heterogeneous node)."""

    DELAY = 0.05

    def evaluate_shard(self, scenario_dicts):
        time.sleep(self.DELAY)
        return super().evaluate_shard(scenario_dicts)

TRIPLES = [(2, 1, 0), (2, 3, 1)]
HORIZONS = range(10, 60)
SHARD_SIZE = 5


def _unique_scenarios():
    return [
        SimulateSpec(num_rays=m, num_robots=k, num_faulty=f, horizon=float(horizon))
        for m, k, f in TRIPLES
        for horizon in HORIZONS
    ]


def _start_worker():
    return _start_worker_on(0)


def _start_worker_on(port):
    server = create_server(host="127.0.0.1", port=port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def test_perf_remote_dispatch(benchmark):
    scenarios = _unique_scenarios()
    started = [_start_worker() for _ in range(2)]
    servers = [server for server, _thread in started]
    try:
        start = time.perf_counter()
        serial = ScenarioScheduler().run_batch(scenarios, max_workers=1)
        serial_seconds = time.perf_counter() - start

        urls = [server.url for server in servers]
        pool = RemoteWorkerPool(urls)
        start = time.perf_counter()
        distributed = ScenarioScheduler(workers=pool).run_batch(
            scenarios, max_workers=1, shard_size=SHARD_SIZE
        )
        distributed_seconds = time.perf_counter() - start

        assert list(distributed.results) == list(serial.results)  # bit-identical
        assert distributed.num_remote_workers == 2
        assert distributed.remote_evaluated > 0
        assert distributed.failovers == 0

        # Failover: one worker accepted the handshake, then vanished.
        class _Vanished(RemoteWorker):
            def check_health(self):
                self.alive = True
                return True

        flaky_pool = RemoteWorkerPool(
            [RemoteWorker(urls[0]), _Vanished("http://127.0.0.1:9")]
        )
        start = time.perf_counter()
        failover = ScenarioScheduler(workers=flaky_pool).run_batch(
            scenarios, max_workers=1, shard_size=SHARD_SIZE
        )
        failover_seconds = time.perf_counter() - start

        assert list(failover.results) == list(serial.results)  # survives the death
        assert failover.failovers >= 1

        # Backpressure: one fast and one slow worker pull from the same
        # queue; the slow one must end the batch with fewer shards.
        fast = RemoteWorker(urls[0])
        slow = _SlowWorker(urls[1])
        start = time.perf_counter()
        backpressure = ScenarioScheduler(
            workers=RemoteWorkerPool([fast, slow])
        ).run_batch(scenarios, max_workers=1, shard_size=1)
        backpressure_seconds = time.perf_counter() - start
        assert list(backpressure.results) == list(serial.results)
        assert slow.shards_completed < fast.shards_completed

        # Supervisor recovery: dead worker, 50 ms re-probe interval; time
        # from process restart to the pool seeing it live again.
        victim, victim_thread = _start_worker()
        victim_port = victim.server_address[1]
        victim_url = victim.url
        victim.shutdown()
        victim.server_close()
        victim_thread.join(timeout=10)
        recovery_pool = RemoteWorkerPool([victim_url], health_timeout=2.0)
        recovery_pool.refresh()
        assert recovery_pool.workers[0].alive is False
        supervisor = recovery_pool.start_supervisor(reprobe_interval=0.05)
        revived, revived_thread = _start_worker_on(victim_port)
        start = time.perf_counter()
        deadline = start + 60
        while recovery_pool.workers[0].alive is not True:
            assert time.perf_counter() < deadline, supervisor.stats()
            time.sleep(0.005)
        recovery_seconds = time.perf_counter() - start
        recovery_pool.stop_supervisor()
        revived.shutdown()
        revived.server_close()
        revived_thread.join(timeout=10)

        remote_shards = distributed.remote_evaluated // SHARD_SIZE
        overhead_ms = (
            (distributed_seconds - serial_seconds) * 1e3 / max(1, remote_shards)
        )
        benchmark.extra_info["experiment"] = "PERF-REMOTE"
        benchmark.extra_info["num_scenarios"] = len(scenarios)
        benchmark.extra_info["shard_size"] = SHARD_SIZE
        benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
        benchmark.extra_info["distributed_seconds"] = round(distributed_seconds, 4)
        benchmark.extra_info["failover_seconds"] = round(failover_seconds, 4)
        benchmark.extra_info["remote_evaluated"] = distributed.remote_evaluated
        benchmark.extra_info["failovers"] = failover.failovers
        benchmark.extra_info["dispatch_overhead_ms_per_shard"] = round(overhead_ms, 2)
        benchmark.extra_info["backpressure_seconds"] = round(backpressure_seconds, 4)
        benchmark.extra_info["backpressure_fast_shards"] = fast.shards_completed
        benchmark.extra_info["backpressure_slow_shards"] = slow.shards_completed
        benchmark.extra_info["slow_worker_delay_ms"] = _SlowWorker.DELAY * 1e3
        benchmark.extra_info["supervisor_recovery_seconds"] = round(
            recovery_seconds, 4
        )
        print(
            f"\nremote dispatch @ {len(scenarios)} scenarios, shard {SHARD_SIZE}: "
            f"serial {serial_seconds * 1e3:.0f} ms, "
            f"distributed (2 in-process workers) {distributed_seconds * 1e3:.0f} ms "
            f"({distributed.remote_evaluated} specs remote), "
            f"failover run {failover_seconds * 1e3:.0f} ms "
            f"({failover.failovers} shards failed over)\n"
            f"per-shard dispatch overhead ~{overhead_ms:.1f} ms "
            "(in-process workers share the CPU: this measures round-trip cost, "
            "not multi-machine speedup)\n"
            f"backpressure @ shard 1, slow worker +{_SlowWorker.DELAY * 1e3:.0f} ms: "
            f"fast took {fast.shards_completed} shards, slow "
            f"{slow.shards_completed} ({backpressure_seconds * 1e3:.0f} ms); "
            f"supervisor re-probe @ 50 ms interval revived a restarted worker "
            f"in {recovery_seconds * 1e3:.0f} ms"
        )

        warmed = ScenarioScheduler(workers=pool)
        warmed.run_batch(scenarios, max_workers=1, shard_size=SHARD_SIZE)
        benchmark.pedantic(
            lambda: warmed.run_batch(scenarios, max_workers=1, shard_size=SHARD_SIZE),
            rounds=3,
            iterations=1,
        )
    finally:
        for server, thread in started:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

"""Perf — distributed dispatch: remote shard round-trips and failover cost.

Two in-process ``repro serve`` workers back a distributed scheduler run of
the acceptance grid.  Three measurements:

1. **Serial baseline** — the same unique specs evaluated serially in
   process (no shards, no HTTP);
2. **Distributed cold batch** — shards round-robined across the two
   workers and the local pool; asserts the results are bit-identical to
   the serial baseline and derives the per-spec dispatch overhead;
3. **Failover batch** — one worker is killed between the health handshake
   and dispatch, so every shard it owned fails over to the local pool;
   asserts bit-identity again and measures the recovery cost.

In-process workers share this machine's cores, so the distributed wall
clock measures *overhead*, not speedup — the win appears when workers are
separate machines.  The numbers land in ``extra_info`` so the bench JSON
tracks the dispatch layer over time (PERFORMANCE.md, "Distributed
dispatch").
"""

from __future__ import annotations

import threading
import time

from repro.service.remote import RemoteWorker, RemoteWorkerPool
from repro.service.scheduler import ScenarioScheduler
from repro.service.server import create_server
from repro.service.spec import SimulateSpec

TRIPLES = [(2, 1, 0), (2, 3, 1)]
HORIZONS = range(10, 60)
SHARD_SIZE = 5


def _unique_scenarios():
    return [
        SimulateSpec(num_rays=m, num_robots=k, num_faulty=f, horizon=float(horizon))
        for m, k, f in TRIPLES
        for horizon in HORIZONS
    ]


def _start_worker():
    server = create_server(host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def test_perf_remote_dispatch(benchmark):
    scenarios = _unique_scenarios()
    started = [_start_worker() for _ in range(2)]
    servers = [server for server, _thread in started]
    try:
        start = time.perf_counter()
        serial = ScenarioScheduler().run_batch(scenarios, max_workers=1)
        serial_seconds = time.perf_counter() - start

        urls = [server.url for server in servers]
        pool = RemoteWorkerPool(urls)
        start = time.perf_counter()
        distributed = ScenarioScheduler(workers=pool).run_batch(
            scenarios, max_workers=1, shard_size=SHARD_SIZE
        )
        distributed_seconds = time.perf_counter() - start

        assert list(distributed.results) == list(serial.results)  # bit-identical
        assert distributed.num_remote_workers == 2
        assert distributed.remote_evaluated > 0
        assert distributed.failovers == 0

        # Failover: one worker accepted the handshake, then vanished.
        class _Vanished(RemoteWorker):
            def check_health(self):
                self.alive = True
                return True

        flaky_pool = RemoteWorkerPool(
            [RemoteWorker(urls[0]), _Vanished("http://127.0.0.1:9")]
        )
        start = time.perf_counter()
        failover = ScenarioScheduler(workers=flaky_pool).run_batch(
            scenarios, max_workers=1, shard_size=SHARD_SIZE
        )
        failover_seconds = time.perf_counter() - start

        assert list(failover.results) == list(serial.results)  # survives the death
        assert failover.failovers >= 1

        remote_shards = distributed.remote_evaluated // SHARD_SIZE
        overhead_ms = (
            (distributed_seconds - serial_seconds) * 1e3 / max(1, remote_shards)
        )
        benchmark.extra_info["experiment"] = "PERF-REMOTE"
        benchmark.extra_info["num_scenarios"] = len(scenarios)
        benchmark.extra_info["shard_size"] = SHARD_SIZE
        benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
        benchmark.extra_info["distributed_seconds"] = round(distributed_seconds, 4)
        benchmark.extra_info["failover_seconds"] = round(failover_seconds, 4)
        benchmark.extra_info["remote_evaluated"] = distributed.remote_evaluated
        benchmark.extra_info["failovers"] = failover.failovers
        benchmark.extra_info["dispatch_overhead_ms_per_shard"] = round(overhead_ms, 2)
        print(
            f"\nremote dispatch @ {len(scenarios)} scenarios, shard {SHARD_SIZE}: "
            f"serial {serial_seconds * 1e3:.0f} ms, "
            f"distributed (2 in-process workers) {distributed_seconds * 1e3:.0f} ms "
            f"({distributed.remote_evaluated} specs remote), "
            f"failover run {failover_seconds * 1e3:.0f} ms "
            f"({failover.failovers} shards failed over)\n"
            f"per-shard dispatch overhead ~{overhead_ms:.1f} ms "
            "(in-process workers share the CPU: this measures round-trip cost, "
            "not multi-machine speedup)"
        )

        warmed = ScenarioScheduler(workers=pool)
        warmed.run_batch(scenarios, max_workers=1, shard_size=SHARD_SIZE)
        benchmark.pedantic(
            lambda: warmed.run_batch(scenarios, max_workers=1, shard_size=SHARD_SIZE),
            rounds=3,
            iterations=1,
        )
    finally:
        for server, thread in started:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

"""Perf — distributed dispatch: remote shard round-trips and failover cost.

Two in-process ``repro serve`` workers back a distributed scheduler run of
the acceptance grid.  Three measurements:

1. **Serial baseline** — the same unique specs evaluated serially in
   process (no shards, no HTTP);
2. **Distributed cold batch** — shards round-robined across the two
   workers and the local pool; asserts the results are bit-identical to
   the serial baseline and derives the per-spec dispatch overhead;
3. **Failover batch** — one worker is killed between the health handshake
   and dispatch, so the shard it holds goes back on the pull queue; asserts
   bit-identity again and measures the recovery cost;
4. **Backpressure split** — one fast and one artificially slow worker pull
   from the same queue; records how many shards each ended up taking (the
   slow one must take fewer — placement follows throughput, not index
   arithmetic);
5. **Supervisor recovery** — a worker is stopped, marked dead, restarted
   on its old port, and the time for a 50 ms-interval
   :class:`~repro.service.remote.WorkerSupervisor` to re-probe it back to
   live is measured;
5b. **Wire overhead** — 400 warm single-spec shards against one worker on
   three transports (fresh-dial JSON, pooled JSON, pooled binary frames);
   the per-shard dispatch overhead floor (round-trip minus the
   worker-reported evaluation time) must stay ≤ 0.3 ms on the pooled wire
   with > 90% connection reuse, and results must stay bit-identical on
   all three;
6. **Telemetry overhead** — recording-primitive calls are counted over a
   cold distributed batch and priced with tight loops; the op-accounted
   cost lands in ``telemetry_overhead_pct`` and must stay within the 5%
   budget.  A direct on/off A/B of warm batches
   (:func:`repro.service.telemetry.set_enabled`) is also recorded
   (``telemetry_ab_overhead_pct``) for trend tracking — its resolution on
   a shared box is only a few percent.

In-process workers share this machine's cores, so the distributed wall
clock measures *overhead*, not speedup — the win appears when workers are
separate machines.  The numbers land in ``extra_info`` so the bench JSON
tracks the dispatch layer over time (PERFORMANCE.md, "Distributed
dispatch").
"""

from __future__ import annotations

import gc
import statistics
import threading
import time

from repro.service import telemetry
from repro.service.remote import RemoteWorker, RemoteWorkerPool
from repro.service.scheduler import ScenarioScheduler
from repro.service.server import create_server
from repro.service.spec import SimulateSpec


class _SlowWorker(RemoteWorker):
    """A correct worker with added per-shard latency (heterogeneous node)."""

    DELAY = 0.05

    def evaluate_shard(self, scenario_dicts):
        time.sleep(self.DELAY)
        return super().evaluate_shard(scenario_dicts)

TRIPLES = [(2, 1, 0), (2, 3, 1)]
HORIZONS = range(10, 60)
SHARD_SIZE = 5


def _unique_scenarios():
    return [
        SimulateSpec(num_rays=m, num_robots=k, num_faulty=f, horizon=float(horizon))
        for m, k, f in TRIPLES
        for horizon in HORIZONS
    ]


def _start_worker():
    return _start_worker_on(0)


def _start_worker_on(port):
    server = create_server(host="127.0.0.1", port=port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def test_perf_remote_dispatch(benchmark):
    scenarios = _unique_scenarios()
    started = [_start_worker() for _ in range(2)]
    servers = [server for server, _thread in started]
    try:
        start = time.perf_counter()
        serial = ScenarioScheduler().run_batch(scenarios, max_workers=1)
        serial_seconds = time.perf_counter() - start

        urls = [server.url for server in servers]
        pool = RemoteWorkerPool(urls)
        start = time.perf_counter()
        distributed = ScenarioScheduler(workers=pool).run_batch(
            scenarios, max_workers=1, shard_size=SHARD_SIZE
        )
        distributed_seconds = time.perf_counter() - start

        assert list(distributed.results) == list(serial.results)  # bit-identical
        assert distributed.num_remote_workers == 2
        assert distributed.remote_evaluated > 0
        assert distributed.failovers == 0

        # Failover: one worker accepted the handshake, then vanished.
        class _Vanished(RemoteWorker):
            def check_health(self):
                self.alive = True
                return True

        flaky_pool = RemoteWorkerPool(
            [RemoteWorker(urls[0]), _Vanished("http://127.0.0.1:9")]
        )
        start = time.perf_counter()
        failover = ScenarioScheduler(workers=flaky_pool).run_batch(
            scenarios, max_workers=1, shard_size=SHARD_SIZE
        )
        failover_seconds = time.perf_counter() - start

        assert list(failover.results) == list(serial.results)  # survives the death
        assert failover.failovers >= 1

        # Backpressure: one fast and one slow worker pull from the same
        # queue; the slow one must end the batch with fewer shards.
        fast = RemoteWorker(urls[0])
        slow = _SlowWorker(urls[1])
        start = time.perf_counter()
        backpressure = ScenarioScheduler(
            workers=RemoteWorkerPool([fast, slow])
        ).run_batch(scenarios, max_workers=1, shard_size=1)
        backpressure_seconds = time.perf_counter() - start
        assert list(backpressure.results) == list(serial.results)
        assert slow.shards_completed < fast.shards_completed

        # Supervisor recovery: dead worker, 50 ms re-probe interval; time
        # from process restart to the pool seeing it live again.
        victim, victim_thread = _start_worker()
        victim_port = victim.server_address[1]
        victim_url = victim.url
        victim.shutdown()
        victim.server_close()
        victim_thread.join(timeout=10)
        recovery_pool = RemoteWorkerPool([victim_url], health_timeout=2.0)
        recovery_pool.refresh()
        assert recovery_pool.workers[0].alive is False
        supervisor = recovery_pool.start_supervisor(reprobe_interval=0.05)
        revived, revived_thread = _start_worker_on(victim_port)
        start = time.perf_counter()
        deadline = start + 60
        while recovery_pool.workers[0].alive is not True:
            assert time.perf_counter() < deadline, supervisor.stats()
            time.sleep(0.005)
        recovery_seconds = time.perf_counter() - start
        recovery_pool.stop_supervisor()
        revived.shutdown()
        revived.server_close()
        revived_thread.join(timeout=10)

        # Wire + pooled connections: per-shard dispatch overhead.  400
        # single-spec shards against one cache-warmed worker, so every
        # round-trip is transport plus a worker-side cache hit; the
        # worker's own ``repro_worker_batch_seconds`` time is subtracted
        # out.  Three transports over the same worker: fresh-dial JSON
        # (the pre-wire protocol), pooled JSON, pooled binary frames.
        # The floor (min over round-trips, timeit-style — load can only
        # ever add time) is the asserted number; the mean rides along in
        # extra_info for trend tracking.
        wire_grid = [
            SimulateSpec(num_rays=m, num_robots=k, num_faulty=f, horizon=float(h))
            for m, k, f in TRIPLES
            for h in range(300, 500)
        ]
        assert len(wire_grid) == 400
        shard_dicts = [[spec.to_dict()] for spec in wire_grid]
        warmup = RemoteWorker(urls[0], wire=False)
        assert warmup.check_health()
        expected_results = warmup.evaluate_shard(
            [spec.to_dict() for spec in wire_grid]
        )
        warmup.close()
        eval_hist = servers[0].worker_batch_seconds

        def _dispatch_400(shard_worker):
            assert shard_worker.check_health()
            eval_before = eval_hist.snapshot()["sum"]
            times, results = [], []
            for shard in shard_dicts:
                shard_start = time.perf_counter()
                results.extend(shard_worker.evaluate_shard(shard))
                times.append(time.perf_counter() - shard_start)
            per_shard_eval = (
                eval_hist.snapshot()["sum"] - eval_before
            ) / len(shard_dicts)
            # Bit-identical on every transport, fresh or pooled, JSON or
            # binary frames.
            assert results == expected_results
            return {
                "floor_ms": round((min(times) - per_shard_eval) * 1e3, 3),
                "mean_ms": round(
                    (statistics.mean(times) - per_shard_eval) * 1e3, 3
                ),
            }

        fresh_dial = RemoteWorker(urls[0], wire=False, max_idle_connections=0)
        json_pooled = RemoteWorker(urls[0], wire=False)
        framed = RemoteWorker(urls[0])
        fresh_overhead = _dispatch_400(fresh_dial)
        json_overhead = _dispatch_400(json_pooled)
        wire_overhead = _dispatch_400(framed)
        conn_stats = framed.connection_stats()
        assert framed.wire_enabled is True  # handshake negotiated frames
        assert conn_stats["reuse_fraction"] > 0.9  # pooling actually held
        assert conn_stats["redials"] == 0
        # The ROADMAP target: <= 0.3 ms of dispatch overhead per shard
        # with persistent connections (PERFORMANCE.md, "Wire protocol").
        assert wire_overhead["floor_ms"] <= 0.3, wire_overhead
        for shard_worker in (fresh_dial, json_pooled, framed):
            shard_worker.close()

        remote_shards = distributed.remote_evaluated // SHARD_SIZE
        overhead_ms = (
            (distributed_seconds - serial_seconds) * 1e3 / max(1, remote_shards)
        )
        benchmark.extra_info["experiment"] = "PERF-REMOTE"
        benchmark.extra_info["num_scenarios"] = len(scenarios)
        benchmark.extra_info["shard_size"] = SHARD_SIZE
        benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
        benchmark.extra_info["distributed_seconds"] = round(distributed_seconds, 4)
        benchmark.extra_info["failover_seconds"] = round(failover_seconds, 4)
        benchmark.extra_info["remote_evaluated"] = distributed.remote_evaluated
        benchmark.extra_info["failovers"] = failover.failovers
        benchmark.extra_info["dispatch_overhead_ms_per_shard"] = round(overhead_ms, 2)
        benchmark.extra_info["backpressure_seconds"] = round(backpressure_seconds, 4)
        benchmark.extra_info["backpressure_fast_shards"] = fast.shards_completed
        benchmark.extra_info["backpressure_slow_shards"] = slow.shards_completed
        benchmark.extra_info["slow_worker_delay_ms"] = _SlowWorker.DELAY * 1e3
        benchmark.extra_info["supervisor_recovery_seconds"] = round(
            recovery_seconds, 4
        )
        benchmark.extra_info["wire_shards"] = len(shard_dicts)
        benchmark.extra_info["wire_overhead_ms_floor"] = wire_overhead["floor_ms"]
        benchmark.extra_info["wire_overhead_ms_mean"] = wire_overhead["mean_ms"]
        benchmark.extra_info["json_pooled_overhead_ms_floor"] = json_overhead[
            "floor_ms"
        ]
        benchmark.extra_info["json_pooled_overhead_ms_mean"] = json_overhead[
            "mean_ms"
        ]
        benchmark.extra_info["json_fresh_overhead_ms_floor"] = fresh_overhead[
            "floor_ms"
        ]
        benchmark.extra_info["json_fresh_overhead_ms_mean"] = fresh_overhead[
            "mean_ms"
        ]
        benchmark.extra_info["wire_reuse_fraction"] = conn_stats["reuse_fraction"]
        print(
            f"\nremote dispatch @ {len(scenarios)} scenarios, shard {SHARD_SIZE}: "
            f"serial {serial_seconds * 1e3:.0f} ms, "
            f"distributed (2 in-process workers) {distributed_seconds * 1e3:.0f} ms "
            f"({distributed.remote_evaluated} specs remote), "
            f"failover run {failover_seconds * 1e3:.0f} ms "
            f"({failover.failovers} shards failed over)\n"
            f"per-shard dispatch overhead ~{overhead_ms:.1f} ms "
            "(in-process workers share the CPU: this measures round-trip cost, "
            "not multi-machine speedup)\n"
            f"backpressure @ shard 1, slow worker +{_SlowWorker.DELAY * 1e3:.0f} ms: "
            f"fast took {fast.shards_completed} shards, slow "
            f"{slow.shards_completed} ({backpressure_seconds * 1e3:.0f} ms); "
            f"supervisor re-probe @ 50 ms interval revived a restarted worker "
            f"in {recovery_seconds * 1e3:.0f} ms"
        )
        print(
            f"per-shard dispatch overhead @ 400 warm single-spec shards "
            f"(floor/mean): fresh-dial JSON "
            f"{fresh_overhead['floor_ms']:.2f}/{fresh_overhead['mean_ms']:.2f} ms, "
            f"pooled JSON "
            f"{json_overhead['floor_ms']:.2f}/{json_overhead['mean_ms']:.2f} ms, "
            f"pooled binary wire "
            f"{wire_overhead['floor_ms']:.2f}/{wire_overhead['mean_ms']:.2f} ms "
            f"(reuse {conn_stats['reuse_fraction']:.1%}, budget 0.3 ms floor)"
        )

        # Telemetry overhead, primary estimate: operation accounting.  An
        # A/B comparison of two ~250 ms batches cannot resolve a sub-1%
        # cost on a shared box (run-to-run CPU drift alone is a few
        # percent), so the budget number is built from first principles:
        # every recording primitive is wrapped with a counting shim, one
        # cold distributed batch runs (coordinator + both in-process
        # workers all counted), and each primitive is then priced with a
        # tight loop on this machine.  sum(count x unit cost) over the
        # batch's CPU time is the overhead, and it is deterministic up to
        # the unit-cost loops.  Must stay within the 5% budget in
        # PERFORMANCE.md ("Observability").
        cold_grid = [
            SimulateSpec(num_rays=m, num_robots=k, num_faulty=f, horizon=float(h))
            for m, k, f in TRIPLES
            for h in range(1000, 1200)  # disjoint horizons: every tier cold
        ]
        calls = {"inc": 0, "observe": 0, "gauge": 0, "span": 0, "record": 0}
        calls_lock = threading.Lock()

        def _counted(method, key):
            def wrapper(*args, **kwargs):
                with calls_lock:
                    calls[key] += 1
                return method(*args, **kwargs)

            return wrapper

        primitives = [
            (telemetry.Counter, "inc", "inc"),
            (telemetry.Histogram, "observe", "observe"),
            (telemetry.Gauge, "set", "gauge"),
            (telemetry.Gauge, "add", "gauge"),
            (telemetry.Tracer, "span", "span"),
            (telemetry.Tracer, "record_span", "record"),
        ]
        saved = [(cls, attr, getattr(cls, attr)) for cls, attr, _key in primitives]
        cpu_start = time.process_time()
        try:
            for cls, attr, key in primitives:
                setattr(cls, attr, _counted(getattr(cls, attr), key))
            cold_batch = ScenarioScheduler(workers=pool).run_batch(
                cold_grid, max_workers=1, shard_size=SHARD_SIZE
            )
        finally:
            batch_cpu = time.process_time() - cpu_start
            for cls, attr, method in saved:
                setattr(cls, attr, method)
        assert len(list(cold_batch.results)) == len(cold_grid)

        probe = telemetry.MetricsRegistry()
        probe_counter = probe.counter("bench_probe_total")
        probe_hist = probe.histogram("bench_probe_seconds")
        probe_gauge = probe.gauge("bench_probe")
        probe_tracer = telemetry.Tracer()

        def _span_once():
            with probe_tracer.span("probe"):
                pass

        def _unit_cost(op, iterations=20000):
            start = time.process_time()
            for _ in range(iterations):
                op()
            return (time.process_time() - start) / iterations

        unit_cost = {
            "inc": _unit_cost(probe_counter.inc),
            "observe": _unit_cost(lambda: probe_hist.observe(1e-3)),
            "gauge": _unit_cost(lambda: probe_gauge.set(1.0)),
            "span": _unit_cost(_span_once, iterations=5000),
            "record": _unit_cost(
                lambda: probe_tracer.record_span("probe", "bench", 0.0, 1e-3),
                iterations=5000,
            ),
        }
        telemetry_cpu = sum(calls[key] * unit_cost[key] for key in calls)
        telemetry_overhead_pct = 100.0 * telemetry_cpu / batch_cpu
        benchmark.extra_info["telemetry_overhead_pct"] = round(
            telemetry_overhead_pct, 2
        )
        benchmark.extra_info["telemetry_calls"] = dict(calls)
        benchmark.extra_info["telemetry_cpu_ms"] = round(telemetry_cpu * 1e3, 3)
        benchmark.extra_info["telemetry_batch_cpu_ms"] = round(batch_cpu * 1e3, 1)
        print(
            f"telemetry overhead: {telemetry_overhead_pct:.2f}% CPU "
            f"(budget 5%; {sum(calls.values())} recording calls ~ "
            f"{telemetry_cpu * 1e3:.2f} ms of a {batch_cpu * 1e3:.0f} ms "
            f"cold {len(cold_grid)}-spec batch)"
        )

        # Secondary, for trend tracking only: a direct A/B of identical
        # warm-worker batches with recording globally on vs off.  Pure CPU
        # comparison (``time.process_time`` covers the coordinator and both
        # in-process workers), on/off interleaved in alternating order (a
        # sequential on-block then off-block hands one side the benefit of
        # progressive warm-up and inflates the result several-fold), and
        # the estimator is the median of per-pair ratios so transient load
        # bursts shared by adjacent runs cancel.  Even so its resolution on
        # a shared box is only a few percent — read it against the
        # op-accounted figure above, not against the budget.
        overhead_grid = [
            SimulateSpec(num_rays=m, num_robots=k, num_faulty=f, horizon=float(h))
            for m, k, f in TRIPLES
            for h in range(10, 210)
        ]
        expected = ScenarioScheduler(workers=pool).run_batch(
            overhead_grid, max_workers=1, shard_size=SHARD_SIZE
        )

        def _timed_batch():
            wall_start = time.perf_counter()
            cpu_start = time.process_time()
            batch = ScenarioScheduler(workers=pool).run_batch(
                overhead_grid, max_workers=1, shard_size=SHARD_SIZE
            )
            cpu = time.process_time() - cpu_start
            wall = time.perf_counter() - wall_start
            assert list(batch.results) == list(expected.results)
            return wall, cpu

        pairs = []
        on_wall, off_wall = [], []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for round_index in range(16):
                order = (True, False) if round_index % 2 == 0 else (False, True)
                sample = {}
                for mode_on in order:
                    telemetry.set_enabled(mode_on)
                    wall, cpu = _timed_batch()
                    sample[mode_on] = cpu
                    (on_wall if mode_on else off_wall).append(wall)
                pairs.append(sample)
        finally:
            telemetry.set_enabled(True)
            if gc_was_enabled:
                gc.enable()
        telemetry_on_seconds = statistics.median(on_wall)
        telemetry_off_seconds = statistics.median(off_wall)
        telemetry_ab_pct = (
            statistics.median(pair[True] / pair[False] for pair in pairs) - 1.0
        ) * 100.0
        benchmark.extra_info["telemetry_ab_on_seconds"] = round(
            telemetry_on_seconds, 4
        )
        benchmark.extra_info["telemetry_ab_off_seconds"] = round(
            telemetry_off_seconds, 4
        )
        benchmark.extra_info["telemetry_ab_overhead_pct"] = round(telemetry_ab_pct, 2)
        print(
            f"telemetry A/B trend: {telemetry_ab_pct:+.1f}% CPU "
            f"(~±3% noise floor; wall medians on "
            f"{telemetry_on_seconds * 1e3:.0f} ms / off "
            f"{telemetry_off_seconds * 1e3:.0f} ms @ "
            f"{len(overhead_grid)} warm scenarios)"
        )

        warmed = ScenarioScheduler(workers=pool)
        warmed.run_batch(scenarios, max_workers=1, shard_size=SHARD_SIZE)
        benchmark.pedantic(
            lambda: warmed.run_batch(scenarios, max_workers=1, shard_size=SHARD_SIZE),
            rounds=3,
            iterations=1,
        )
    finally:
        for server, thread in started:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

"""Perf — the service layer: cache hit-rate, dedup and batch throughput.

Three measurements on the acceptance grid (200 scenarios, 50% duplicate
specs):

1. **Cold batch** — empty cache: dedup alone must hold the engine-
   evaluation count to the number of unique specs (<= 100);
2. **Warm batch** — the identical batch resubmitted: zero engine
   evaluations, every unique spec served from the in-memory LRU.  The
   acceptance floor is a >= 5x wall-clock speedup over the cold run;
3. **Single-evaluation cache hit** — `ScenarioScheduler.evaluate` on a
   cached spec, the `POST /evaluate` fast path.

The measured times land in ``extra_info`` so the bench JSON tracks the
serving layer over time (PERFORMANCE.md, "Serving layer").
"""

from __future__ import annotations

import time

from repro.service.cache import ResultCache
from repro.service.scheduler import ScenarioScheduler
from repro.service.spec import SimulateSpec

TRIPLES = [(2, 1, 0), (2, 3, 1)]
HORIZONS = range(10, 60)
WORKERS = 4


def _acceptance_scenarios():
    unique = [
        SimulateSpec(num_rays=m, num_robots=k, num_faulty=f, horizon=float(horizon))
        for m, k, f in TRIPLES
        for horizon in HORIZONS
    ]
    return unique + list(reversed(unique))  # 200 scenarios, 50% duplicates


def test_perf_service_batch(benchmark):
    scenarios = _acceptance_scenarios()
    assert len(scenarios) == 200

    scheduler = ScenarioScheduler(cache=ResultCache(max_entries=4096))

    start = time.perf_counter()
    cold = scheduler.run_batch(scenarios, max_workers=WORKERS)
    cold_seconds = time.perf_counter() - start

    assert cold.num_unique == 100
    assert cold.evaluated <= 100, (
        f"dedup failed: {cold.evaluated} engine evaluations for "
        f"{cold.num_unique} unique specs"
    )

    start = time.perf_counter()
    warm = scheduler.run_batch(scenarios, max_workers=WORKERS)
    warm_seconds = time.perf_counter() - start

    assert warm.evaluated == 0
    assert warm.cache_hits == 100
    assert list(warm.results) == list(cold.results)
    warm_speedup = cold_seconds / warm_seconds

    # The POST /evaluate fast path: one cached single evaluation.
    spec = scenarios[0]
    scheduler.evaluate(spec)
    start = time.perf_counter()
    for _ in range(100):
        _payload, cached = scheduler.evaluate(spec)
        assert cached
    hit_seconds = (time.perf_counter() - start) / 100

    stats = scheduler.cache.stats()
    benchmark.extra_info["experiment"] = "PERF-SERVICE"
    benchmark.extra_info["num_scenarios"] = len(scenarios)
    benchmark.extra_info["num_unique"] = cold.num_unique
    benchmark.extra_info["cold_evaluated"] = cold.evaluated
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["warm_speedup"] = round(warm_speedup, 1)
    benchmark.extra_info["warm_throughput_per_s"] = round(
        len(scenarios) / warm_seconds, 1
    )
    benchmark.extra_info["cache_hit_seconds"] = round(hit_seconds, 6)
    benchmark.extra_info["cache_hit_rate"] = round(stats.hit_rate, 4)
    print(
        f"\nservice batch @ {len(scenarios)} scenarios (50% duplicates): "
        f"cold {cold_seconds * 1e3:.0f} ms ({cold.evaluated} engine evals), "
        f"warm {warm_seconds * 1e3:.0f} ms ({warm.evaluated} evals), "
        f"{warm_speedup:.0f}x\n"
        f"warm throughput {len(scenarios) / warm_seconds:.0f} scenarios/s; "
        f"single cache hit {hit_seconds * 1e6:.0f} us; "
        f"cache hit rate {stats.hit_rate:.2%}"
    )

    benchmark.pedantic(
        lambda: scheduler.run_batch(scenarios, max_workers=WORKERS),
        rounds=3,
        iterations=1,
    )
    assert warm_speedup >= 5.0, (
        f"warm cache only {warm_speedup:.1f}x faster than cold evaluation"
    )

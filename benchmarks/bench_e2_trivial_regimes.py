"""E2 — Trivial and impossible regimes.

``k >= m (f + 1)`` admits ratio exactly 1 (straight-line strategy);
``k == f`` admits no finite ratio at all.
"""

from __future__ import annotations

import math

from repro.analysis.tables import e2_trivial_regimes


def test_e2_trivial_regimes(benchmark, experiment_runner):
    table = experiment_runner(benchmark, e2_trivial_regimes, horizon=1e3)
    for row in table.rows:
        regime, measured = row[3], row[5]
        if regime == "trivial":
            assert abs(measured - 1.0) < 1e-9
        else:
            assert measured == math.inf

"""Shared helpers for the benchmark harness.

Every ``bench_e*`` module regenerates one experiment table (the experiment
ids E1–E12 match the generators in :mod:`repro.analysis.tables`), and
``bench_perf_engine`` tracks the scalar-versus-vectorized engine speedup
(see PERFORMANCE.md).  The pytest-benchmark fixture times the table
generation; the rendered table itself is attached to the benchmark's
``extra_info`` and printed, so running

    pytest benchmarks/ --benchmark-only -s

reproduces every number in the tables.
"""

from __future__ import annotations

import pytest

from repro.reporting import render_experiment


def run_experiment(benchmark, builder, **kwargs):
    """Benchmark ``builder(**kwargs)`` and print the resulting table."""
    table = benchmark.pedantic(lambda: builder(**kwargs), rounds=1, iterations=1)
    text = render_experiment(table)
    benchmark.extra_info["experiment"] = table.experiment_id
    benchmark.extra_info["rows"] = len(table.rows)
    print()
    print(text)
    return table


@pytest.fixture
def experiment_runner():
    """Fixture returning the :func:`run_experiment` helper."""
    return run_experiment

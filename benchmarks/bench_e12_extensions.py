"""E12 — Extensions beyond the paper's worst-case deterministic setting.

* Randomized single-robot ray search (related work: Kao–Reif–Tate,
  Schuierer): the expected ratio is roughly half of the deterministic
  overhead (4.59 vs 9 on the line).
* Random, non-adversarial crash faults: the average detection ratio of the
  paper's optimal strategy sits well below its adversarial guarantee.
"""

from __future__ import annotations

from repro.analysis.tables import e12_randomized_and_average_case


def test_e12_extensions(benchmark, experiment_runner):
    table = experiment_runner(
        benchmark, e12_randomized_and_average_case, horizon=500.0, num_trials=150
    )
    randomized_rows = [row for row in table.rows if row[0].startswith("randomized")]
    injection_rows = [row for row in table.rows if row[0].startswith("random crash")]
    assert randomized_rows and injection_rows
    for row in randomized_rows:
        deterministic, randomized = row[2], row[3]
        assert randomized < deterministic
        # Randomisation saves roughly half of the overhead.
        assert 0.35 < (randomized - 1.0) / (deterministic - 1.0) < 0.65
    for row in injection_rows:
        worst_case, average = row[2], row[3]
        assert average < worst_case

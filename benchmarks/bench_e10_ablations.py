"""E10 — Ablations.

1. Sensitivity of the geometric strategy to its base ``alpha``: the optimum
   sits exactly at ``alpha* = (q/(q-k))^(1/k)`` and every deviation costs.
2. The replication baseline (mask faults by moving in groups of ``f + 1``)
   versus the paper's strategy, on an instance where replication wastes a
   robot.
3. A lower-bound certificate run: claiming 5% better than the bound is
   refuted on concrete strategy data.
"""

from __future__ import annotations

from repro.analysis.tables import e10_alpha_ablation
from repro.core.bounds import crash_line_ratio
from repro.core.certificates import CertificateKind, certify_line_strategy
from repro.core.problem import line_problem
from repro.strategies.geometric import ZigzagGeometricLineStrategy


def test_e10_alpha_sweep_and_baseline(benchmark, experiment_runner):
    table = experiment_runner(
        benchmark, e10_alpha_ablation, m=2, k=3, f=1, horizon=5e3
    )
    geometric_rows = [row for row in table.rows if str(row[0]).startswith("geometric")]
    optimum_rows = [row for row in geometric_rows if row[1] == 1.0]
    assert len(optimum_rows) == 1
    best = min(row[3] for row in geometric_rows)
    # The optimal base is the best measured base in the sweep.
    assert optimum_rows[0][3] <= best + 1e-6
    # Every off-optimum base is measurably worse (the guarantee column grows).
    for row in geometric_rows:
        if row[1] != 1.0:
            assert row[2] > optimum_rows[0][2]


def test_e10_lower_bound_certificate(benchmark):
    problem = line_problem(3, 1)
    strategy = ZigzagGeometricLineStrategy(problem)
    sequences = [strategy.turning_points(robot, 2000.0) for robot in range(3)]
    bound = crash_line_ratio(3, 1)

    certificate = benchmark.pedantic(
        lambda: certify_line_strategy(
            sequences, claimed_ratio=0.95 * bound, num_faulty=1, horizon=500.0
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("[E10] lower-bound certificate:", certificate.summary())
    assert certificate.kind in (
        CertificateKind.COVERAGE_HOLE,
        CertificateKind.POTENTIAL_BUDGET,
    )

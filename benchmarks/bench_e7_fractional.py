"""E7 — Fractional one-ray retrieval (Eq. 11).

C(eta) versus the rational-approximation construction; the approximation
tightens as the number of equal-weight robots grows.
"""

from __future__ import annotations

from repro.analysis.tables import e7_fractional
from repro.core.bounds import fractional_retrieval_ratio


def test_e7_fractional(benchmark, experiment_runner):
    table = experiment_runner(benchmark, e7_fractional, horizon=5e3)
    for row in table.rows:
        eta, robots, effective_eta, paper, measured = row
        # The measured ratio matches the integer bound of the effective eta,
        # and converges to C(eta) as the robot count grows.
        assert measured <= fractional_retrieval_ratio(effective_eta) + 1e-6
    finest = [row for row in table.rows if row[1] == 8]
    for row in finest:
        assert abs(row[4] - row[3]) / row[3] < 0.06

"""E8 — Lemmas 4 and 5, verified numerically on a grid of (k, s).

The two elementary inequalities that power the potential-function argument:
the polynomial maximiser of Lemma 4 and the growth factor delta > 1 of
Lemma 5 whenever mu is below the critical value.
"""

from __future__ import annotations

from repro.analysis.tables import e8_lemmas


def test_e8_lemmas(benchmark, experiment_runner):
    table = experiment_runner(benchmark, e8_lemmas)
    for row in table.rows:
        delta, lemma4_holds, lemma5_holds = row[3], row[4], row[5]
        assert delta > 1.0
        assert lemma4_holds is True
        assert lemma5_holds is True
